// Package cluster shards the request engine the way the paper shards a
// faulty hypercube: N independent engine shards — each with its own plan
// cache, machine pools, and dispatch lanes — behind a front router that
// consistent-hashes requests by plan key, so traffic on one
// configuration keeps landing on (and fusing within) one shard, and the
// global mutexes a single engine serializes on (plan-key interning, lane
// lookup, pool maps) split N ways.
//
// The router is the cluster's whole control plane, and it is lock-free:
// an immutable hash ring, per-shard in-flight atomics, and three
// decisions per request.
//
//   - Route: hash the configuration's canonical fingerprint, find its
//     home shard on the ring. Same configuration, same shard — plan
//     caches never duplicate work in the steady state.
//   - Spill: when the home shard's in-flight count crosses the spill
//     high-water mark, the request may land on one of the key's R
//     replica shards instead (the ring successors of its home; least
//     loaded wins). Each replica warms its own cached plan on first
//     contact, so a hot configuration's capacity grows R+1 fold.
//   - Shed: when every eligible shard — home and all replicas — is at
//     the shed limit, the router refuses the request BEFORE it touches
//     any queue, wrapping engine.ErrAdmissionRejected so the HTTP layer
//     answers the same 503-with-Retry-After contract as per-shard
//     admission. This is the cluster-wide backpressure the per-lane
//     bounded queues cannot provide on their own.
//
// Direct-eligible sorts take an inline fast path: after the router
// admits a request, the target shard serves it on the caller's
// goroutine via Engine.DoDirect — no lane hop, no dispatcher handoff —
// because for the direct substrate a lane adds admission control and
// nothing else, and admission just happened at the router. Everything
// else (simulated sorts, selection ops, armed-chaos configurations)
// flows through the shard engine's ordinary dispatch lanes unchanged.
package cluster

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"context"

	"hypersort/internal/engine"
	"hypersort/internal/machine"
	"hypersort/internal/obs"
	"hypersort/internal/partition"
	"hypersort/internal/transport"
)

// ErrSaturated is found (via errors.Is) in a Result.Err when the router
// shed a request because its home shard and every replica candidate were
// at the shed limit. It always wraps engine.ErrAdmissionRejected, so
// callers that already map admission rejection to backpressure (503 +
// Retry-After in cmd/serve) need no new case.
var ErrSaturated = errors.New("cluster: all eligible shards saturated")

// Options configures a Cluster. The zero value selects sensible
// defaults: GOMAXPROCS shards, one replica, spill at twice the fused
// batch depth, shed at the per-lane admission-queue bound.
type Options struct {
	// Shards is the number of independent engine shards. Values < 1
	// select GOMAXPROCS — one shard per processor, the goroutine-domain
	// analogue of one subcube per working partition.
	Shards int
	// Replicas is how many replica shards a hot plan key may spill to
	// (its ring successors). 0 disables spill; values < 0 select the
	// default (1). Clamped to Shards-1.
	Replicas int
	// SpillHighWater is the in-flight request count on a key's home
	// shard above which the router considers spilling to a replica.
	// Values < 1 select the default (2x the fused batch depth).
	SpillHighWater int
	// ShedLimit is the per-shard in-flight count at which a shard stops
	// being eligible; when home and all replicas reach it the request is
	// shed with ErrSaturated. Values < 1 select the default (the
	// per-lane admission queue depth). Always normalized to exceed
	// SpillHighWater, or spill could never precede shed.
	ShedLimit int
	// VirtualNodes is the ring points per shard. Values < 1 select the
	// default (128), plenty for near-uniform spread at any realistic
	// shard count.
	VirtualNodes int

	// PoolSize and Workers bound each shard's machine pool and batch
	// concurrency (see engine.NewOpts); values < 1 mean GOMAXPROCS.
	PoolSize int
	Workers  int
	// Batch tunes each shard's continuous-batching dispatcher.
	Batch engine.BatchOptions
	// Mode, OracleSample, and Trace are applied to every shard (see the
	// corresponding Engine setters).
	Mode         engine.Mode
	OracleSample int
	Trace        machine.TraceFunc
}

// shard is one backend plus the router-side load accounting for it.
type shard struct {
	id int
	be Backend
	// inflight counts requests dispatched to this shard and not yet
	// completed — the load signal spill and shed thresholds compare
	// against. Router-owned: the backend's own queue metrics stay
	// backend-internal.
	inflight atomic.Int64
}

// load is the figure spill and shed thresholds compare: the router's
// own in-flight count, raised to the backend's self-reported gauge when
// that is higher (a remote shard also sees load from other proxies).
func (s *shard) load() int64 {
	l := s.inflight.Load()
	if bl := s.be.Load(); bl > l {
		l = bl
	}
	return l
}

// routeScratch is the per-request routing workspace, pooled so the
// router allocates nothing in steady state.
type routeScratch struct {
	keyBuf []byte
	cands  []int
	walk   []int // full-ring successor walk, used only on unhealthy paths
}

// Cluster is N engine shards behind a consistent-hash router with
// replica spill and cluster-wide load shedding. All methods are safe
// for concurrent use.
type Cluster struct {
	shards   []*shard
	ring     *ring
	replicas int
	spillHW  int64
	shed     int64
	workers  int

	scratch sync.Pool // *routeScratch
	shedErr error     // prebuilt: contents are static per cluster
	downErr error     // prebuilt: every shard unhealthy

	requests atomic.Int64
	spills   atomic.Int64
	sheds    atomic.Int64
	reroutes atomic.Int64

	// cm is nil until Instrument; every consuming path guards on that.
	cm *obs.ClusterMetrics
}

// normalize fills opts' defaults for a cluster of `shards` shards.
func (opts *Options) normalize(shards int) {
	opts.Shards = shards
	if opts.Replicas < 0 {
		opts.Replicas = 1
	}
	if opts.Replicas > opts.Shards-1 {
		opts.Replicas = opts.Shards - 1
	}
	maxBatch := opts.Batch.MaxBatch
	if maxBatch < 1 {
		maxBatch = 8 // engine.NewOpts's default fused depth
	}
	if opts.SpillHighWater < 1 {
		opts.SpillHighWater = 2 * maxBatch
	}
	if opts.ShedLimit < 1 {
		opts.ShedLimit = opts.Batch.QueueDepth
		if opts.ShedLimit < 1 {
			opts.ShedLimit = 256 // engine.NewOpts's default queue depth
		}
	}
	if opts.ShedLimit <= opts.SpillHighWater {
		opts.ShedLimit = opts.SpillHighWater + 1
	}
	if opts.VirtualNodes < 1 {
		opts.VirtualNodes = 128
	}
	if opts.Workers < 1 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
}

// build assembles the router over an already-constructed backend set.
func build(opts Options, backends []Backend) *Cluster {
	opts.normalize(len(backends))
	c := &Cluster{
		ring:     newRing(opts.Shards, opts.VirtualNodes),
		replicas: opts.Replicas,
		spillHW:  int64(opts.SpillHighWater),
		shed:     int64(opts.ShedLimit),
		workers:  opts.Workers,
	}
	c.shedErr = fmt.Errorf("%w: %w (%d shards, %d replicas, shed limit %d in-flight)",
		ErrSaturated, engine.ErrAdmissionRejected, opts.Shards, opts.Replicas, opts.ShedLimit)
	c.downErr = fmt.Errorf("%w: %w (no healthy shards among %d)",
		ErrSaturated, engine.ErrAdmissionRejected, opts.Shards)
	for i, be := range backends {
		c.shards = append(c.shards, &shard{id: i, be: be})
	}
	return c
}

// New builds an in-process cluster. Like the engine it fronts, it
// performs no planning up front; each shard's plans and machines
// materialize as the router first sends it traffic.
func New(opts Options) *Cluster {
	if opts.Shards < 1 {
		opts.Shards = runtime.GOMAXPROCS(0)
	}
	backends := make([]Backend, opts.Shards)
	for i := range backends {
		e := engine.NewOpts(opts.PoolSize, opts.Workers, opts.Batch)
		e.SetMode(opts.Mode)
		e.SetOracleSample(opts.OracleSample)
		if opts.Trace != nil {
			e.SetTrace(opts.Trace)
		}
		backends[i] = &localShard{eng: e}
	}
	return build(opts, backends)
}

// NewWithBackends builds a cluster over caller-constructed backends —
// the multi-process entry point (RemoteShard backends, one per shard
// process address) and the seam tests use to substitute failing
// backends. Shard IDs follow slice order, so the ring routes
// identically to an in-process cluster of the same size: the ring
// hashes shard INDICES, not addresses.
func NewWithBackends(opts Options, backends []Backend) *Cluster {
	return build(opts, backends)
}

// NumShards returns the number of engine shards.
func (c *Cluster) NumShards() int { return len(c.shards) }

// Instrument registers the cluster's observability bundles in r and
// attaches them: the router's spill/shed counters, the decision-latency
// histogram, one labelled request counter and in-flight gauge per
// shard, and every shard engine's own bundles (shared instruments —
// shards accumulate into one engine-level series set, while the
// per-shard split lives in the cluster families). Call once, before the
// cluster serves traffic.
func (c *Cluster) Instrument(r *obs.Registry) {
	c.cm = obs.NewClusterMetrics(r, len(c.shards))
	for _, s := range c.shards {
		s.be.Instrument(r)
	}
}

// Close shuts down every shard backend: dispatch lanes drain and pooled
// machine workers retire in-process; transport clients close in
// multi-process mode. Idempotent, like Engine.Close.
func (c *Cluster) Close() {
	for _, s := range c.shards {
		s.be.Close()
	}
}

// HealthyShards counts shards currently reporting healthy.
func (c *Cluster) HealthyShards() int {
	n := 0
	for _, s := range c.shards {
		if s.be.Healthy() {
			n++
		}
	}
	return n
}

// QueueWaitHint is the worst (maximum) median queue wait any shard
// reported, in nanoseconds — the proxy's Retry-After signal. Always 0
// for in-process clusters, whose queue wait is observed locally.
func (c *Cluster) QueueWaitHint() int64 {
	var hint int64
	for _, s := range c.shards {
		if w := s.be.QueueWaitNs(); w > hint {
			hint = w
		}
	}
	return hint
}

// hashConfig fingerprints cfg into the scratch buffer and hashes it.
// The fingerprint is partition.AppendKey's canonical encoding — the
// same bytes the shard engines intern as their plan-cache keys — so
// "same plan key" and "same shard" coincide by construction.
func hashConfig(sc *routeScratch, cfg engine.Config) uint64 {
	sc.keyBuf = partition.AppendKeyRouting(sc.keyBuf[:0], cfg.Dim, cfg.Faults, cfg.LinkFaults, int(cfg.Model), int(cfg.Routing))
	return fnv1a(sc.keyBuf)
}

// route picks the shard for cfg: home unless spilling, least-loaded
// candidate when spilling, nil plus the shed error when every candidate
// is saturated. spilled reports a non-home choice.
//
// Health enters before load does: when any of the key's home+replica
// candidates is unhealthy, the candidate window slides along the ring —
// the full successor order, unhealthy shards skipped, first R+1
// survivors kept. Keys homed on healthy shards route exactly as before
// (the fast path below never allocates or touches the full walk), keys
// homed on a dead shard land deterministically on its ring successor,
// and when every shard is down the request sheds with the same
// 503-shaped error contract as saturation.
func (c *Cluster) route(cfg engine.Config) (target *shard, spilled bool, err error) {
	var start time.Time
	if c.cm != nil {
		start = time.Now()
	}
	sc, _ := c.scratch.Get().(*routeScratch)
	if sc == nil {
		sc = &routeScratch{}
	}
	h := hashConfig(sc, cfg)
	cands := c.ring.successors(h, c.replicas+1, sc.cands[:0])
	for _, i := range cands {
		if !c.shards[i].be.Healthy() {
			cands = c.healthySuccessors(h, sc, cands)
			break
		}
	}
	if len(cands) == 0 {
		sc.cands = cands
		c.scratch.Put(sc)
		if c.cm != nil {
			c.cm.Decision.Observe(time.Since(start).Nanoseconds())
		}
		return nil, false, c.downErr
	}
	home := c.shards[cands[0]]
	target = home
	if load := home.load(); load >= c.spillHW {
		// Home is hot: consider the replica set, least loaded first.
		best, bestLoad := home, load
		for _, i := range cands[1:] {
			s := c.shards[i]
			if l := s.load(); l < bestLoad {
				best, bestLoad = s, l
			}
		}
		if bestLoad >= c.shed {
			// argmin load >= shed limit means EVERY candidate is at the
			// limit: cluster-wide backpressure, refused before any queue.
			sc.cands = cands
			c.scratch.Put(sc)
			if c.cm != nil {
				c.cm.Decision.Observe(time.Since(start).Nanoseconds())
			}
			return nil, false, c.shedErr
		}
		target, spilled = best, best != home
	}
	sc.cands = cands
	c.scratch.Put(sc)
	if c.cm != nil {
		c.cm.Decision.Observe(time.Since(start).Nanoseconds())
	}
	return target, spilled, nil
}

// healthySuccessors rebuilds the candidate window when some candidate
// is down: the key's full ring successor order filtered to healthy
// shards, truncated to the replica window. Empty when every shard is
// unhealthy.
func (c *Cluster) healthySuccessors(h uint64, sc *routeScratch, cands []int) []int {
	sc.walk = c.ring.successors(h, len(c.shards), sc.walk[:0])
	cands = cands[:0]
	for _, i := range sc.walk {
		if c.shards[i].be.Healthy() {
			cands = append(cands, i)
			if len(cands) == c.replicas+1 {
				break
			}
		}
	}
	return cands
}

// Candidates returns the shard ids eligible to serve cfg, home first,
// then its replica candidates in ring order. Pure — the same
// configuration always yields the same list on clusters of the same
// shape — which is what the spill-determinism tests pin.
func (c *Cluster) Candidates(cfg engine.Config) []int {
	sc := &routeScratch{}
	h := hashConfig(sc, cfg)
	return c.ring.successors(h, c.replicas+1, nil)
}

// Do executes one request synchronously through the router. Errors —
// shedding included — are reported in Result.Err, mirroring Engine.Do.
func (c *Cluster) Do(req engine.Request) engine.Result {
	return c.DoContext(context.Background(), req)
}

// DoContext is Do with deadline and cancellation awareness (the
// semantics of Engine.DoContext, behind a routing decision).
//
// In multi-process mode a dispatched request can fail AFTER routing
// because its shard process died mid-call. The router retries such
// failures — route again (the dead shard now reports unhealthy, so the
// key lands on its ring successor) — up to one attempt per shard, so a
// storm survives a shard kill with zero failed non-shed requests.
func (c *Cluster) DoContext(ctx context.Context, req engine.Request) engine.Result {
	c.requests.Add(1)
	cm := c.cm
	if cm != nil {
		cm.Requests.Inc()
	}
	for attempt := 0; ; attempt++ {
		s, spilled, err := c.route(req.Config)
		if err != nil {
			c.sheds.Add(1)
			if cm != nil {
				cm.Sheds.Inc()
			}
			return engine.Result{Err: err}
		}
		if spilled {
			c.spills.Add(1)
			if cm != nil {
				cm.Spills.Inc()
			}
		}
		s.inflight.Add(1)
		if cm != nil {
			cm.ShardRequests[s.id].Inc()
			cm.ShardInflight[s.id].Add(1)
		}
		res := s.be.Do(ctx, req)
		s.inflight.Add(-1)
		if cm != nil {
			cm.ShardInflight[s.id].Add(-1)
		}
		if res.Err != nil && errors.Is(res.Err, transport.ErrShardDown) &&
			attempt < len(c.shards) && ctx.Err() == nil {
			c.reroutes.Add(1)
			if cm != nil {
				cm.Reroutes.Inc()
			}
			continue
		}
		return res
	}
}

// Batch executes the requests concurrently — at most the cluster's
// worker bound in flight, each routed independently — and returns one
// Result per request, in order, with per-request error isolation.
func (c *Cluster) Batch(reqs []engine.Request) []engine.Result {
	return c.BatchContext(context.Background(), reqs)
}

// BatchContext is Batch with a shared context: requests still waiting
// when ctx is done return its error; running requests complete.
func (c *Cluster) BatchContext(ctx context.Context, reqs []engine.Request) []engine.Result {
	out := make([]engine.Result, len(reqs))
	sem := make(chan struct{}, c.workers)
	var wg sync.WaitGroup
	for i := range reqs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			out[i] = c.DoContext(ctx, reqs[i])
		}(i)
	}
	wg.Wait()
	return out
}

// InjectFault arms the live-fault schedule on EVERY shard's pool for
// cfg: the router may serve the configuration from its home shard or,
// under load, any replica, so a drill that armed only one shard would
// silently miss spilled traffic. Arming continues past per-shard
// failures; the joined error reports any shard that refused.
func (c *Cluster) InjectFault(cfg engine.Config, injs ...machine.Injection) error {
	var errs []error
	for _, s := range c.shards {
		if err := s.be.InjectFault(cfg, injs...); err != nil {
			errs = append(errs, fmt.Errorf("shard %d: %w", s.id, err))
		}
	}
	return errors.Join(errs...)
}

// DisarmFaults clears cfg's injection schedule on every shard, fired
// entries included.
func (c *Cluster) DisarmFaults(cfg engine.Config) error {
	var errs []error
	for _, s := range c.shards {
		if err := s.be.DisarmFaults(cfg); err != nil {
			errs = append(errs, fmt.Errorf("shard %d: %w", s.id, err))
		}
	}
	return errors.Join(errs...)
}

// Metrics is a snapshot of the cluster's lifetime counters: the routing
// totals, the engine counters summed across shards, and each shard's
// own engine counters (the per-shard view the chaos and spill tests
// assert on).
type Metrics struct {
	// Requests counts requests that entered the router; Spills the
	// subset steered to a replica shard; Sheds the subset refused with
	// ErrSaturated.
	Requests int64
	Spills   int64
	Sheds    int64
	// Reroutes counts requests re-dispatched to a ring successor after
	// their chosen shard failed mid-call (always zero in-process).
	Reroutes int64
	// Engine is the element-wise sum of Shards.
	Engine engine.Metrics
	// Shards holds each shard engine's own counters, indexed by shard id.
	Shards []engine.Metrics
}

// Metrics returns a snapshot of the cluster's lifetime counters.
func (c *Cluster) Metrics() Metrics {
	m := Metrics{
		Requests: c.requests.Load(),
		Spills:   c.spills.Load(),
		Sheds:    c.sheds.Load(),
		Reroutes: c.reroutes.Load(),
		Shards:   make([]engine.Metrics, len(c.shards)),
	}
	for i, s := range c.shards {
		sm := s.be.Metrics()
		m.Shards[i] = sm
		m.Engine.Requests += sm.Requests
		m.Engine.PlanHits += sm.PlanHits
		m.Engine.PlanMisses += sm.PlanMisses
		m.Engine.MachinesBuilt += sm.MachinesBuilt
		m.Engine.MachinesCloned += sm.MachinesCloned
		m.Engine.FusedBatches += sm.FusedBatches
		m.Engine.FusedRequests += sm.FusedRequests
		m.Engine.AdmissionRejected += sm.AdmissionRejected
		m.Engine.Cancelled += sm.Cancelled
		m.Engine.Replans += sm.Replans
		m.Engine.Unrecoverable += sm.Unrecoverable
		m.Engine.DirectRequests += sm.DirectRequests
		m.Engine.DirectBatches += sm.DirectBatches
		m.Engine.OracleRuns += sm.OracleRuns
		m.Engine.ParityBreaks += sm.ParityBreaks
	}
	return m
}
