// Package cli holds the small parsing helpers the command-line tools
// share: comma-separated processor address lists, integer lists, and
// fault-model / protocol names.
package cli

import (
	"fmt"
	"strconv"
	"strings"

	"hypersort/internal/bitonic"
	"hypersort/internal/cube"
	"hypersort/internal/machine"
)

// ParseNodeList parses a comma-separated list of processor addresses
// ("3, 5,16"); an empty or blank string yields nil.
func ParseNodeList(s string) ([]cube.NodeID, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	out := make([]cube.NodeID, 0, len(parts))
	for _, part := range parts {
		v, err := strconv.ParseUint(strings.TrimSpace(part), 10, 32)
		if err != nil {
			return nil, fmt.Errorf("bad processor address %q: %v", part, err)
		}
		out = append(out, cube.NodeID(v))
	}
	return out, nil
}

// ParseIntList parses a comma-separated list of positive integers; an
// empty string yields nil.
func ParseIntList(s string) ([]int, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, part := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad integer %q: %v", part, err)
		}
		if v <= 0 {
			return nil, fmt.Errorf("integer %d must be positive", v)
		}
		out = append(out, v)
	}
	return out, nil
}

// ParseEdgeList parses a comma-separated list of links written as
// endpoint pairs joined by '-' ("0-1,5-7"); an empty string yields nil.
// Endpoints must be hypercube neighbors.
func ParseEdgeList(s string) (cube.EdgeSet, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	out := cube.NewEdgeSet()
	for _, part := range strings.Split(s, ",") {
		ends := strings.Split(strings.TrimSpace(part), "-")
		if len(ends) != 2 {
			return nil, fmt.Errorf("bad link %q: want a-b", part)
		}
		a, err := strconv.ParseUint(strings.TrimSpace(ends[0]), 10, 32)
		if err != nil {
			return nil, fmt.Errorf("bad link endpoint %q: %v", ends[0], err)
		}
		b, err := strconv.ParseUint(strings.TrimSpace(ends[1]), 10, 32)
		if err != nil {
			return nil, fmt.Errorf("bad link endpoint %q: %v", ends[1], err)
		}
		if cube.HammingDistance(cube.NodeID(a), cube.NodeID(b)) != 1 {
			return nil, fmt.Errorf("link %q does not connect hypercube neighbors", part)
		}
		out.Add(cube.NodeID(a), cube.NodeID(b))
	}
	return out, nil
}

// ParseFaultModel maps "partial"/"total" to the machine fault models.
func ParseFaultModel(s string) (machine.FaultModel, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "partial":
		return machine.Partial, nil
	case "total":
		return machine.Total, nil
	}
	return machine.Partial, fmt.Errorf("unknown fault model %q (want partial or total)", s)
}

// ParseProtocol maps "full"/"half" to the compare-exchange protocols.
func ParseProtocol(s string) (bitonic.Protocol, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "full", "full-block":
		return bitonic.FullBlock, nil
	case "half", "half-exchange":
		return bitonic.HalfExchange, nil
	}
	return bitonic.FullBlock, fmt.Errorf("unknown protocol %q (want full or half)", s)
}
