package machine

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// runTask is the descriptor Run hands a node's persistent worker: the
// kernel to execute and the prepared Proc for this run. The worker
// executes exactly one task per Run.
type runTask struct {
	kernel Kernel
	proc   *Proc
	slot   int
	rs     *runState
}

// runState is the shared coordination state of one Run, owned by the
// machine and reused across runs. It deliberately holds the abort fan-out
// targets (nodes, barrier) rather than the Machine itself so that a
// worker never keeps its Machine reachable between tasks — idle workers
// must not defeat the Close finalizer.
type runState struct {
	wg   sync.WaitGroup
	errs []error
	// nodes and bar are the abort fan-out for the current run; rearmed by
	// RunInto before dispatch.
	nodes    []*node
	bar      runBarrier
	aborting atomic.Bool
}

// fail records a participant's error and aborts the run exactly once,
// waking every peer blocked in Recv or Barrier.
func (rs *runState) fail(slot int, err error) {
	rs.errs[slot] = err
	if rs.aborting.CompareAndSwap(false, true) {
		rs.bar.abort()
		for _, nd := range rs.nodes {
			nd.box.abort()
		}
	}
}

// workerLoop is one node's persistent kernel executor. Workers are
// spawned once per machine (lazily, at the first Run) and reused across
// runs, so steady-state engine traffic pays a channel handoff instead of
// a goroutine spawn, and the worker keeps its warmed-up stack — kernels
// recurse through merge trees, and re-growing a fresh 8 KiB stack every
// run was a measurable share of the old substrate's cost.
//
// The loop deliberately references only its two channels and, while
// executing, the task descriptor: never the Machine. That keeps an idle
// machine collectible, letting the Close finalizer retire leaked workers
// (see Machine.Close).
func workerLoop(work <-chan runTask, stop <-chan struct{}) {
	for {
		select {
		case <-stop:
			return
		case t := <-work:
			if err := t.proc.runKernel(t.kernel); err != nil {
				t.rs.fail(t.slot, err)
			}
			t.rs.wg.Done()
		}
	}
}

// runOneShot executes a single task on a throwaway goroutine. A machine's
// first Run uses these: experiment sweeps build thousands of machines
// that each run exactly once, and for them persistent workers would be
// pure overhead (spawn + teardown + finalizer bookkeeping with no reuse
// to amortize it). The second Run on a machine upgrades to the
// persistent pool.
func runOneShot(t runTask) {
	if err := t.proc.runKernel(t.kernel); err != nil {
		t.rs.fail(t.slot, err)
	}
	t.rs.wg.Done()
}

// startWorkers spawns the persistent workers, once. Only healthy nodes
// get one — faulty processors never execute kernels.
func (m *Machine) startWorkers() {
	if m.stop != nil {
		return
	}
	m.stop = make(chan struct{})
	for _, id := range m.healthy {
		nd := m.nodes[id]
		if nd.work == nil {
			nd.work = make(chan runTask, 1)
		}
		go workerLoop(nd.work, m.stop)
	}
	// Safety net for machines that are dropped without Close (experiment
	// sweeps build thousands of short-lived machines): once the Machine
	// is unreachable the finalizer retires its workers. This is why
	// workers must never reference the Machine while idle.
	runtime.SetFinalizer(m, (*Machine).Close)
}

// Close retires the machine's persistent worker goroutines. It must not
// be called while a Run is in flight. Close is idempotent, and the
// machine remains usable: a later Run simply respawns the workers.
// Machines that are dropped without Close are cleaned up by a finalizer,
// so calling it is an optimization (prompt teardown, e.g. on server
// shutdown), not an obligation.
func (m *Machine) Close() {
	if m.stop == nil {
		return
	}
	close(m.stop)
	m.stop = nil
	runtime.SetFinalizer(m, nil)
}
