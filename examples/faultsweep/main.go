// Faultsweep: the operator's question the paper answers — as processors
// fail one by one on a 64-node hypercube, how much sorting throughput
// survives? Compares the fault-tolerant sort (keep the whole machine,
// partition around faults) against the classic reconfiguration (retreat
// to the biggest fault-free subcube) at each fault count.
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"hypersort"
	"hypersort/internal/bitonic"
	"hypersort/internal/cube"
	"hypersort/internal/machine"
	"hypersort/internal/maxsubcube"
	"hypersort/internal/sortutil"
	"hypersort/internal/workload"
	"hypersort/internal/xrand"
)

const (
	dim  = 6
	mKey = 64_000
)

func main() {
	rng := xrand.New(2026)
	keys := workload.MustGenerate(workload.Uniform, mKey, rng)
	h := cube.New(dim)

	// Fail processors one at a time (cumulatively, same story an operator
	// lives through) and measure both strategies after each failure.
	failureOrder := rng.Sample(h.Size(), dim-1)

	w := tabwriter.NewWriter(os.Stdout, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "failed\tours: working\tours: time\tbaseline: subcube\tbaseline: time\tspeedup")
	var faults []hypersort.NodeID
	for r := 0; r <= dim-1; r++ {
		if r > 0 {
			faults = append(faults, hypersort.NodeID(failureOrder[r-1]))
		}

		// Ours: fault-tolerant sort on the whole degraded machine.
		s, err := hypersort.New(hypersort.Config{Dim: dim, Faults: faults})
		if err != nil {
			log.Fatal(err)
		}
		_, stats, err := s.Sort(keys)
		if err != nil {
			log.Fatal(err)
		}

		// Baseline: plain bitonic sort on the maximum fault-free subcube.
		faultSet := cube.NewNodeSet(faults...)
		sc, k := maxsubcube.Find(h, faultSet)
		baseMach := machine.MustNew(machine.Config{Dim: k})
		_, baseRes, err := bitonic.Sort(baseMach, bitonic.FullCube(k), keys, sortutil.Ascending)
		if err != nil {
			log.Fatal(err)
		}

		fmt.Fprintf(w, "%d\t%d procs\t%d\tQ_%d (%s)\t%d\t%.2fx\n",
			r, s.Partition().Working, stats.Makespan,
			k, sc.Format(h), baseRes.Makespan,
			float64(baseRes.Makespan)/float64(stats.Makespan))
	}
	w.Flush()
	fmt.Println("\nspeedup > 1 means the fault-tolerant sort beats retreating to the fault-free subcube.")
	fmt.Println("Rows where the baseline wins are placements where a large subcube happened to survive —")
	fmt.Println("the paper's point (§4) is that this is a gamble: the baseline's worst case idles 3/4 of")
	fmt.Println("the machine, while the partition approach never idles more than 1/4.")
}
