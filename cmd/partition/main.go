// Command partition runs the paper's §2.2 partition algorithm and §3
// heuristics on a fault set and prints the full decision: the cutting set
// Ψ with formula (1) costs, the selected sequence, the per-subcube dead
// processors, and the utilization comparison against the maximum
// fault-free subcube baseline.
//
// Usage:
//
//	partition -n 5 -faults 3,5,16,24
package main

import (
	"flag"
	"fmt"
	"os"

	"hypersort/internal/cli"
	"hypersort/internal/cube"
	"hypersort/internal/maxsubcube"
	"hypersort/internal/partition"
	"hypersort/internal/plot"
)

func main() {
	var (
		n       = flag.Int("n", 5, "hypercube dimension")
		faultsF = flag.String("faults", "", "comma-separated faulty processor addresses")
		svgOut  = flag.String("svg", "", "also draw the partitioned cube as an SVG to this file")
	)
	flag.Parse()

	list, err := cli.ParseNodeList(*faultsF)
	if err != nil {
		fatal(err)
	}
	faults := cube.NewNodeSet(list...)

	h := cube.New(*n)
	plan, err := partition.BuildPlan(*n, faults)
	if err != nil {
		fatal(err)
	}

	fmt.Println(plan)
	fmt.Printf("\ncutting set Ψ (formula (1) cost per sequence):\n")
	for _, d := range plan.Set.Sequences {
		cost, err := partition.ExtraCommCost(h, faults, d)
		if err != nil {
			fatal(err)
		}
		marker := " "
		if d.Equal(plan.Chosen) {
			marker = "*"
		}
		fmt.Printf("  %s %v  cost=%d\n", marker, d, cost)
	}

	if plan.HasDead {
		fmt.Printf("\nsubcubes (address space %s over dims %v):\n", "v", plan.Chosen)
		for v := 0; v < plan.NumSubcubes(); v++ {
			dead := plan.DeadOf(cube.NodeID(v))
			kind := "dangling"
			if faults.Has(dead) {
				kind = "faulty"
			}
			sc := plan.Split.SubcubeOf(cube.NodeID(v))
			fmt.Printf("  v=%s  subcube %s  dead processor %d (%s)\n",
				cube.FormatAddr(cube.NodeID(v), plan.Mincut()), sc.Format(h), dead, kind)
		}
	}

	if *svgOut != "" {
		if err := os.WriteFile(*svgOut, []byte(plot.PartitionSVG(plan)), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("\nwrote %s\n", *svgOut)
	}

	sc, k := maxsubcube.Find(h, faults)
	fmt.Printf("\nbaseline (maximum fault-free subcube): %s, dimension %d, utilization %.1f%%\n",
		sc.Format(h), k, 100*maxsubcube.Utilization(h, faults))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "partition:", err)
	os.Exit(1)
}
