// Package experiments reproduces the paper's evaluation artifacts: the
// mincut distribution of Table 1, the processor-utilization comparison of
// Table 2, the execution-time curves of Figure 7(a)-(d), and the ablation
// studies DESIGN.md calls out (cost-model agreement, heuristic-selection
// value, partial-vs-total fault models). Every experiment is a pure
// function of (parameters, seed), so results are bit-for-bit reproducible.
package experiments

import (
	"fmt"
	"sort"
	"strings"
	"text/tabwriter"

	"hypersort/internal/cube"
	"hypersort/internal/partition"
	"hypersort/internal/xrand"
)

// Table1Row is the mincut distribution for one (n, r) configuration: the
// percentage of random fault placements whose minimum cut count equals
// each observed value.
type Table1Row struct {
	N, R   int
	Trials int
	// Pct maps a mincut value to its percentage of trials.
	Pct map[int]float64
}

// Table1Config parameterizes the sweep. The zero value is completed by
// Table1 with the paper's ranges (n = 3..6, r = 2..n-1, 10000 trials).
type Table1Config struct {
	MinN, MaxN int
	Trials     int
	Seed       uint64
}

func (c *Table1Config) fill() {
	if c.MaxN == 0 {
		c.MinN, c.MaxN = 3, 6
	}
	if c.Trials == 0 {
		c.Trials = 10000
	}
}

// Table1 reproduces the paper's Table 1: for each n and each fault count
// r = 2..n-1, draw Trials random fault placements and tabulate the
// distribution of the partition algorithm's mincut value. (r = 0 and 1
// need no cut, so like the paper we start at r = 2.)
func Table1(cfg Table1Config) ([]Table1Row, error) {
	cfg.fill()
	rng := xrand.New(cfg.Seed)
	var rows []Table1Row
	for n := cfg.MinN; n <= cfg.MaxN; n++ {
		h := cube.New(n)
		for r := 2; r <= n-1; r++ {
			counts := make(map[int]int)
			for trial := 0; trial < cfg.Trials; trial++ {
				faults := sampleFaults(h, r, rng)
				set, err := partition.FindCuttingSet(h, faults)
				if err != nil {
					return nil, fmt.Errorf("experiments: n=%d r=%d: %w", n, r, err)
				}
				counts[set.Mincut]++
			}
			row := Table1Row{N: n, R: r, Trials: cfg.Trials, Pct: make(map[int]float64, len(counts))}
			for m, c := range counts {
				row.Pct[m] = 100 * float64(c) / float64(cfg.Trials)
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// sampleFaults draws r distinct fault addresses uniformly.
func sampleFaults(h cube.Hypercube, r int, rng *xrand.RNG) cube.NodeSet {
	faults := cube.NewNodeSet()
	for _, f := range rng.Sample(h.Size(), r) {
		faults.Add(cube.NodeID(f))
	}
	return faults
}

// FormatTable1 renders rows the way the paper prints Table 1: one line
// per (n, r) with the percentage of each mincut value.
func FormatTable1(rows []Table1Row) string {
	var b strings.Builder
	w := tabwriter.NewWriter(&b, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "n\tr\tmincut: percentage of trials")
	for _, row := range rows {
		ms := make([]int, 0, len(row.Pct))
		for m := range row.Pct {
			ms = append(ms, m)
		}
		sort.Ints(ms)
		parts := make([]string, 0, len(ms))
		for _, m := range ms {
			parts = append(parts, fmt.Sprintf("m=%d: %.2f%%", m, row.Pct[m]))
		}
		fmt.Fprintf(w, "%d\t%d\t%s\n", row.N, row.R, strings.Join(parts, "  "))
	}
	w.Flush()
	return b.String()
}
