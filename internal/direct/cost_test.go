package direct

import (
	"testing"

	"hypersort/internal/core"
	"hypersort/internal/cube"
	"hypersort/internal/machine"
	"hypersort/internal/partition"
	"hypersort/internal/workload"
	"hypersort/internal/xrand"
)

// Predicted-makespan accuracy band vs the simulator's measured virtual
// time. The §3 closed form is a worst-case bound — padded shares, full
// worst-case heapsort and compare-split charges — while the simulated
// makespan is the realized critical path, so the prediction must never
// undershoot (ratio ≥ 1) and empirically lands at 1.12–1.28 across the
// Fig 7 grid. Ratios outside the band mean the analytic model and the
// simulator's cost charging have drifted apart.
const (
	costRatioMin = 1.0
	costRatioMax = 1.5
)

// TestPredictedCostAgainstSimulated sweeps the Figure 7 panel grid —
// every panel dimension, fault counts r ∈ {0, 1, n-1} with seeded random
// placements, and the paper's M sweep endpoints — and requires the
// analytic Result served by direct mode to stay within the stated
// tolerance of the simulator's measured virtual time. This is the CI
// contract that keeps direct mode's predicted costs honest against the
// oracle.
func TestPredictedCostAgainstSimulated(t *testing.T) {
	rng := xrand.New(42)
	for _, n := range []int{3, 4, 5, 6} {
		for _, r := range []int{0, 1, n - 1} {
			faults := samplePlannableFaults(t, n, r, rng)
			plan, err := partition.BuildPlan(n, faults)
			if err != nil {
				t.Fatalf("BuildPlan(%d, %v): %v", n, faults, err)
			}
			m, err := machine.New(machine.Config{Dim: n, Faults: faults})
			if err != nil {
				t.Fatal(err)
			}
			defer m.Close()
			layout := core.NewLayout(plan)
			sch := Compile(layout)
			for _, keys := range []int{3200, 32000} {
				input := workload.MustGenerate(workload.Uniform, keys, rng)
				_, res, err := core.FTSortLayout(m, layout, input, core.Options{})
				if err != nil {
					t.Fatalf("n=%d r=%d M=%d: simulated sort: %v", n, r, keys, err)
				}
				pred, err := sch.Predict(keys, machine.CostModel{})
				if err != nil {
					t.Fatal(err)
				}
				ratio := float64(pred.Makespan) / float64(res.Makespan)
				if ratio < costRatioMin || ratio > costRatioMax {
					t.Errorf("n=%d r=%d faults=%v M=%d: predicted/simulated makespan %d/%d = %.3f outside [%.2g, %.2g]",
						n, r, faults, keys, pred.Makespan, res.Makespan, ratio, costRatioMin, costRatioMax)
				}
			}
		}
	}
}

// samplePlannableFaults draws r distinct faulty nodes on Q_n for which
// a partition plan exists, retrying placements that the planner rejects
// (unseparable fault sets are legitimate refusals, not test inputs).
func samplePlannableFaults(t *testing.T, n, r int, rng *xrand.RNG) cube.NodeSet {
	t.Helper()
	for attempt := 0; attempt < 100; attempt++ {
		faults := cube.NodeSet{}
		for len(faults) < r {
			faults.Add(cube.NodeID(rng.IntN(1 << n)))
		}
		if _, err := partition.BuildPlan(n, faults); err == nil {
			return faults
		}
	}
	t.Fatalf("no plannable %d-fault placement on Q_%d after 100 attempts", r, n)
	return cube.NodeSet{}
}
