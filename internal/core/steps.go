package core

import (
	"fmt"
	"sort"
	"sync"

	"hypersort/internal/cube"
	"hypersort/internal/sortutil"
)

// Stage names a checkpoint in the fault-tolerant sort, mirroring the
// paper's step numbering (its Figure 6 walks exactly these states).
type Stage uint8

const (
	// StageAfterLocalAndIntra is the paper's Figure 6(b): Step 3
	// complete, every subcube sorted ascending/descending by its address
	// parity.
	StageAfterLocalAndIntra Stage = iota
	// StageAfterExchange is Figure 6(c)/(e)/(g): a Step 7 cross-subcube
	// compare-exchange just finished (chunks hold the kept halves).
	StageAfterExchange
	// StageAfterResort is Figure 6(d)/(f)/(h): the Step 8 re-sort after
	// that exchange finished.
	StageAfterResort
)

// String implements fmt.Stringer.
func (s Stage) String() string {
	switch s {
	case StageAfterLocalAndIntra:
		return "after-step-3"
	case StageAfterExchange:
		return "after-step-7"
	case StageAfterResort:
		return "after-step-8"
	}
	return "unknown"
}

// StepEvent is one processor's state at a checkpoint.
type StepEvent struct {
	Stage Stage
	// I and J are the Step 4/6 loop indices (0 and -1 for the Step 3
	// checkpoint).
	I, J int
	// Node is the physical processor, V its subcube address, T its
	// reindexed logical address.
	Node, V, T cube.NodeID
	// Chunk is a copy of the processor's keys (sorted ascending).
	Chunk []sortutil.Key
}

// StepHook receives every processor's state at every checkpoint. Hooks
// run concurrently on the kernel goroutines and must be safe for
// concurrent use; StateRecorder is the stock implementation.
type StepHook func(StepEvent)

// StateRecorder collects step events and reconstructs whole-machine
// snapshots, the programmatic equivalent of the paper's Figure 6 panels.
type StateRecorder struct {
	mu     sync.Mutex
	events []StepEvent
}

// NewStateRecorder returns an empty recorder.
func NewStateRecorder() *StateRecorder { return &StateRecorder{} }

// Record implements StepHook.
func (r *StateRecorder) Record(ev StepEvent) {
	ev.Chunk = sortutil.Clone(ev.Chunk)
	r.mu.Lock()
	r.events = append(r.events, ev)
	r.mu.Unlock()
}

// Snapshot is the machine state at one checkpoint: every working
// processor's chunk, keyed by (subcube, logical address).
type Snapshot struct {
	Stage Stage
	I, J  int
	// Chunks[v][t] is the chunk of logical processor t in subcube v
	// (dead logicals are absent).
	Chunks map[cube.NodeID]map[cube.NodeID][]sortutil.Key
}

// key orders snapshots chronologically: step 3 first, then each (i, j)
// exchange before its re-sort.
func (s *Snapshot) key() int {
	if s.Stage == StageAfterLocalAndIntra {
		return -1
	}
	// Exchanges at (i, j) happen in order of increasing i, decreasing j.
	seq := 0
	for i := 0; i < s.I; i++ {
		seq += i + 1
	}
	seq += s.I - s.J
	k := seq * 2
	if s.Stage == StageAfterResort {
		k++
	}
	return k
}

// Snapshots groups the recorded events into chronological machine
// snapshots.
func (r *StateRecorder) Snapshots() []*Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	byKey := make(map[int]*Snapshot)
	for _, ev := range r.events {
		s := &Snapshot{Stage: ev.Stage, I: ev.I, J: ev.J}
		existing, ok := byKey[s.key()]
		if !ok {
			s.Chunks = make(map[cube.NodeID]map[cube.NodeID][]sortutil.Key)
			byKey[s.key()] = s
			existing = s
		}
		row := existing.Chunks[ev.V]
		if row == nil {
			row = make(map[cube.NodeID][]sortutil.Key)
			existing.Chunks[ev.V] = row
		}
		row[ev.T] = ev.Chunk
	}
	out := make([]*Snapshot, 0, len(byKey))
	for _, s := range byKey {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].key() < out[j].key() })
	return out
}

// SubcubeKeys returns subcube v's keys concatenated in ascending logical
// order (each chunk is internally ascending).
func (s *Snapshot) SubcubeKeys(v cube.NodeID) []sortutil.Key {
	row := s.Chunks[v]
	ts := make([]cube.NodeID, 0, len(row))
	for t := range row {
		ts = append(ts, t)
	}
	sort.Slice(ts, func(i, j int) bool { return ts[i] < ts[j] })
	var out []sortutil.Key
	for _, t := range ts {
		out = append(out, row[t]...)
	}
	return out
}

// Format renders the snapshot compactly, one subcube per line with each
// chunk bracketed — small inputs render like the paper's Figure 6.
func (s *Snapshot) Format() string {
	vs := make([]cube.NodeID, 0, len(s.Chunks))
	for v := range s.Chunks {
		vs = append(vs, v)
	}
	sort.Slice(vs, func(i, j int) bool { return vs[i] < vs[j] })
	out := fmt.Sprintf("%s (i=%d, j=%d)\n", s.Stage, s.I, s.J)
	for _, v := range vs {
		row := s.Chunks[v]
		ts := make([]cube.NodeID, 0, len(row))
		for t := range row {
			ts = append(ts, t)
		}
		sort.Slice(ts, func(i, j int) bool { return ts[i] < ts[j] })
		out += fmt.Sprintf("  v=%d:", v)
		for _, t := range ts {
			out += fmt.Sprintf(" t%d%v", t, row[t])
		}
		out += "\n"
	}
	return out
}
