package transport

import (
	"bytes"
	"encoding/binary"
	"errors"
	"reflect"
	"testing"

	"hypersort/internal/bitonic"
	"hypersort/internal/cube"
	"hypersort/internal/engine"
	"hypersort/internal/machine"
	"hypersort/internal/sortutil"
)

// body strips the 4-byte length prefix off an encoded frame and checks
// the prefix against the actual body length.
func body(t *testing.T, frame []byte) []byte {
	t.Helper()
	if len(frame) < 4 {
		t.Fatalf("frame too short: %d bytes", len(frame))
	}
	n := binary.LittleEndian.Uint32(frame)
	if int(n) != len(frame)-4 {
		t.Fatalf("length prefix %d, body is %d bytes", n, len(frame)-4)
	}
	return frame[4:]
}

func testConfig() engine.Config {
	return engine.Config{
		Dim:                 6,
		Faults:              []cube.NodeID{3, 17, 40},
		LinkFaults:          [][2]cube.NodeID{{0, 1}, {5, 7}},
		Model:               machine.Total,
		Cost:                machine.CostModel{Compare: 1, Elem: 2, Startup: 50},
		Protocol:            bitonic.HalfExchange,
		AccountDistribution: true,
		Routing:             machine.RouteMultipath,
	}
}

func TestRequestRoundTrip(t *testing.T) {
	req := engine.Request{
		Config: testConfig(),
		Op:     engine.OpTopK,
		K:      12,
		Keys:   []sortutil.Key{5, -3, 0, 1 << 62, -(1 << 62), 42},
	}
	frame := AppendRequest(nil, 77, req, 123456789)
	var f Frame
	if err := DecodeFrame(&f, body(t, frame)); err != nil {
		t.Fatalf("DecodeFrame: %v", err)
	}
	if f.Type != TReq || f.Corr != 77 || f.Deadline != 123456789 {
		t.Fatalf("header = (%d, %d, %d), want (TReq, 77, 123456789)", f.Type, f.Corr, f.Deadline)
	}
	if !reflect.DeepEqual(f.Req, req) {
		t.Fatalf("request round-trip mismatch:\n got %+v\nwant %+v", f.Req, req)
	}
}

func TestResultRoundTrip(t *testing.T) {
	res := engine.Result{
		Keys:   []sortutil.Key{-9, -1, 0, 4, 4, 99},
		Value:  -123,
		Direct: true,
		Res: machine.Result{
			Makespan: 1000, Messages: 12, KeysSent: 300, KeyHops: 900,
			Comparisons: 4500, RecvWaits: 3, LinkWait: 77, MaxLinkOccupancy: 5,
			StripedSends: 2,
		},
	}
	fb := Feedback{Inflight: 9, QueueWaitNs: 12345}
	frame := AppendResult(nil, 5, res, fb)
	var f Frame
	if err := DecodeFrame(&f, body(t, frame)); err != nil {
		t.Fatalf("DecodeFrame: %v", err)
	}
	if !reflect.DeepEqual(f.Res, res) {
		t.Fatalf("result round-trip mismatch:\n got %+v\nwant %+v", f.Res, res)
	}
	if f.Feedback != fb {
		t.Fatalf("feedback = %+v, want %+v", f.Feedback, fb)
	}
}

// TestErrorRoundTrip pins the property the HTTP layer depends on: an
// admission rejection or unrecoverable casualty on the shard side keeps
// its errors.Is identity after crossing the wire.
func TestErrorRoundTrip(t *testing.T) {
	cases := []struct {
		name     string
		err      error
		sentinel error
	}{
		{"admission", errors.Join(errors.New("queue full"), engine.ErrAdmissionRejected), engine.ErrAdmissionRejected},
		{"unrecoverable", errors.Join(errors.New("no plan"), engine.ErrUnrecoverable), engine.ErrUnrecoverable},
		{"generic", errors.New("boom"), nil},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			frame := AppendResult(nil, 1, engine.Result{Err: c.err}, Feedback{})
			var f Frame
			if err := DecodeFrame(&f, body(t, frame)); err != nil {
				t.Fatalf("DecodeFrame: %v", err)
			}
			if f.Res.Err == nil {
				t.Fatal("error did not survive the wire")
			}
			if f.Res.Err.Error() != c.err.Error() {
				t.Fatalf("message = %q, want %q", f.Res.Err.Error(), c.err.Error())
			}
			if c.sentinel != nil && !errors.Is(f.Res.Err, c.sentinel) {
				t.Fatalf("decoded error lost its %v identity", c.sentinel)
			}
			if c.sentinel == nil &&
				(errors.Is(f.Res.Err, engine.ErrAdmissionRejected) || errors.Is(f.Res.Err, engine.ErrUnrecoverable)) {
				t.Fatal("generic error gained a sentinel identity")
			}
		})
	}
}

func TestControlFrameRoundTrips(t *testing.T) {
	fb := Feedback{Inflight: 4, QueueWaitNs: 777}

	var f Frame
	if err := DecodeFrame(&f, body(t, AppendProbe(nil, 11))); err != nil || f.Type != TProbe || f.Corr != 11 {
		t.Fatalf("probe: %v %+v", err, f)
	}
	if err := DecodeFrame(&f, body(t, AppendProbeAck(nil, 11, fb))); err != nil || f.Feedback != fb {
		t.Fatalf("probe-ack: %v %+v", err, f)
	}

	cfg := testConfig()
	injs := []machine.Injection{
		{Kind: machine.KillNode, Node: 5, At: 120},
		{Kind: machine.KillLink, Link: [2]cube.NodeID{0, 1}, AfterMessages: 7},
	}
	if err := DecodeFrame(&f, body(t, AppendInject(nil, 3, cfg, injs))); err != nil {
		t.Fatalf("inject: %v", err)
	}
	if !reflect.DeepEqual(f.Cfg, cfg) || !reflect.DeepEqual(f.Injs, injs) {
		t.Fatalf("inject round-trip mismatch: %+v / %+v", f.Cfg, f.Injs)
	}
	if err := DecodeFrame(&f, body(t, AppendDisarm(nil, 4, cfg))); err != nil || !reflect.DeepEqual(f.Cfg, cfg) {
		t.Fatalf("disarm: %v %+v", err, f.Cfg)
	}

	if err := DecodeFrame(&f, body(t, AppendAck(nil, 9, nil, fb))); err != nil || f.Err != nil || f.Feedback != fb {
		t.Fatalf("ok ack: %v %+v", err, f)
	}
	ackErr := errors.Join(errors.New("refused"), engine.ErrAdmissionRejected)
	if err := DecodeFrame(&f, body(t, AppendAck(nil, 9, ackErr, fb))); err != nil {
		t.Fatalf("err ack: %v", err)
	}
	if f.Err == nil || !errors.Is(f.Err, engine.ErrAdmissionRejected) {
		t.Fatalf("ack error lost identity: %v", f.Err)
	}

	m := engine.Metrics{Requests: 10, PlanHits: 9, DirectRequests: 8, ParityBreaks: 1}
	if err := DecodeFrame(&f, body(t, AppendMetricsAck(nil, 2, m, fb))); err != nil {
		t.Fatalf("metrics-ack: %v", err)
	}
	if f.Metrics != m {
		t.Fatalf("metrics round-trip = %+v, want %+v", f.Metrics, m)
	}
}

// TestDecodeRejectsMalformed spot-checks the structured failure modes;
// FuzzDecodeFrame covers the rest of the input space.
func TestDecodeRejectsMalformed(t *testing.T) {
	good := body(t, AppendProbeAck(nil, 1, Feedback{Inflight: 2, QueueWaitNs: 3}))
	var f Frame
	// A request body up to (but excluding) the key payload: header,
	// op/K/deadline, and a zero-valued config.
	reqPrefix := []byte{Version, TReq, 1, byte(engine.OpSort),
		0, 0, // K, deadline
		0, 0, 0, 0, 0, // dim, model, protocol, routing, flags
		0, 0, 0, // cost
	}
	cases := map[string][]byte{
		"empty":        {},
		"bad version":  {9, TProbe, 1},
		"unknown type": {Version, 200, 1},
		"truncated":    good[:len(good)-1],
		"trailing":     append(append([]byte{}, good...), 0),
		// Counts wildly exceeding the remaining bytes must fail fast,
		// BEFORE any allocation sized by them.
		"huge fault count": binary.AppendUvarint(append([]byte{}, reqPrefix...), 1<<40),
		"huge key count": binary.AppendUvarint(append(append([]byte{}, reqPrefix...),
			0, 0), 1<<40), // zero faults, zero link faults, then the key count
	}
	for name, b := range cases {
		t.Run(name, func(t *testing.T) {
			if err := DecodeFrame(&f, b); !errors.Is(err, ErrBadFrame) {
				t.Fatalf("DecodeFrame(%x) = %v, want ErrBadFrame", b, err)
			}
		})
	}
}

// TestDecodeReusesKeyBuffers pins the allocation contract the proxy hot
// path depends on: decoding into a Frame whose key slices have capacity
// does not allocate new ones.
func TestDecodeReusesKeyBuffers(t *testing.T) {
	req := engine.Request{Config: engine.Config{Dim: 3}, Op: engine.OpSort, Keys: make([]sortutil.Key, 64)}
	frame := body(t, AppendRequest(nil, 1, req, 0))
	var f Frame
	f.Req.Keys = make([]sortutil.Key, 0, 128)
	first := &f.Req.Keys[:1][0]
	if err := DecodeFrame(&f, frame); err != nil {
		t.Fatalf("DecodeFrame: %v", err)
	}
	if &f.Req.Keys[0] != first {
		t.Fatal("decode reallocated a key buffer that had capacity")
	}
}

// TestKeyPayloadIsLittleEndian pins the on-wire byte order so both
// endiannesses of host interoperate.
func TestKeyPayloadIsLittleEndian(t *testing.T) {
	frame := AppendResult(nil, 1, engine.Result{Keys: []sortutil.Key{0x0102030405060708}}, Feedback{})
	want := []byte{8, 7, 6, 5, 4, 3, 2, 1}
	if !bytes.HasSuffix(frame, want) {
		t.Fatalf("key payload suffix = %x, want %x", frame[len(frame)-8:], want)
	}
}
