package main

// This file holds the documentation-contract checks that tie the
// Markdown docs to the code and to each other: the serve flag surface
// and the experiment-ID namespace. Both are cross-file invariants that
// godoc-style linting cannot see, and both have drifted in the past —
// flags added to cmd/serve without operator docs, experiment IDs cited
// in prose with no section behind them.

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// flagToken matches a command-line flag mention: a dash-led name
// preceded by start-of-line, whitespace, a backtick, or an opening
// bracket/paren (usage-synopsis style). The leading letter requirement
// keeps negative numbers like -1 out.
var flagToken = regexp.MustCompile("(?:^|[\\s`\\[(])-([a-zA-Z][a-zA-Z0-9-]*)")

// flagDocFiles are the Markdown files where a serve flag counts as
// documented.
var flagDocFiles = []string{"README.md", "OBSERVABILITY.md"}

// serveFlagSection is the OBSERVABILITY.md heading whose body is the
// canonical serve flag list; every flag mentioned there must exist.
const serveFlagSection = "## Running the service"

// LintServeFlags keeps cmd/serve's flag surface and the operator docs
// in sync, in both directions:
//
//   - every flag declared in cmd/serve/main.go must be mentioned (as
//     `-name`) somewhere in README.md or OBSERVABILITY.md;
//   - every flag mentioned under OBSERVABILITY.md's "Running the
//     service" heading must be declared in cmd/serve/main.go.
//
// The reverse direction is scoped to that one section because README
// also documents flags of other commands (cmd/ftsort, cmd/benchjson,
// go tool pprof). Roots without cmd/serve/main.go are skipped — the
// check is specific to this repository's layout.
func LintServeFlags(root string) []string {
	mainPath := filepath.Join(root, "cmd", "serve", "main.go")
	if _, err := os.Stat(mainPath); err != nil {
		return nil
	}
	declared, err := declaredFlags(mainPath)
	if err != nil {
		return []string{fmt.Sprintf("cmd/serve/main.go: %v", err)}
	}

	var findings []string
	documented := map[string]bool{}
	for _, name := range flagDocFiles {
		data, err := os.ReadFile(filepath.Join(root, name))
		if err != nil {
			findings = append(findings, fmt.Sprintf("%s: %v", name, err))
			continue
		}
		for _, m := range flagToken.FindAllStringSubmatch(string(data), -1) {
			documented[m[1]] = true
		}
	}
	for _, f := range sortedKeys(declared) {
		if !documented[f] {
			findings = append(findings, fmt.Sprintf(
				"cmd/serve/main.go: flag -%s is not documented in README.md or OBSERVABILITY.md", f))
		}
	}

	obs, err := os.ReadFile(filepath.Join(root, "OBSERVABILITY.md"))
	if err != nil {
		return findings
	}
	inSection := false
	for i, line := range strings.Split(string(obs), "\n") {
		trimmed := strings.TrimSpace(line)
		if strings.HasPrefix(trimmed, "## ") {
			inSection = trimmed == serveFlagSection
			continue
		}
		if !inSection {
			continue
		}
		for _, m := range flagToken.FindAllStringSubmatch(line, -1) {
			if !declared[m[1]] {
				findings = append(findings, fmt.Sprintf(
					"OBSERVABILITY.md:%d: documented flag -%s is not declared in cmd/serve/main.go", i+1, m[1]))
			}
		}
	}
	return findings
}

// declaredFlags parses one main.go and collects the names registered
// through the flag package: flag.String("name", ...) and friends, plus
// the *Var/Func forms where the name is the second argument.
func declaredFlags(path string) (map[string]bool, error) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, path, nil, 0)
	if err != nil {
		return nil, err
	}
	names := map[string]bool{}
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if pkg, ok := sel.X.(*ast.Ident); !ok || pkg.Name != "flag" {
			return true
		}
		argIdx := 0
		if strings.HasSuffix(sel.Sel.Name, "Var") || sel.Sel.Name == "Func" {
			argIdx = 1
		}
		if argIdx >= len(call.Args) {
			return true
		}
		lit, ok := call.Args[argIdx].(*ast.BasicLit)
		if !ok || lit.Kind != token.STRING {
			return true
		}
		if name, err := strconv.Unquote(lit.Value); err == nil && name != "" {
			names[name] = true
		}
		return true
	})
	return names, nil
}

// expID matches an experiment ID or ID range: E7, E3-E6, E8–E16 (both
// hyphen and en-dash, the second E optional as in "E8–15" style).
var expID = regexp.MustCompile(`\bE(\d+)(?:[-–]E?(\d+))?\b`)

// expRefFiles are the repository docs whose experiment-ID references
// must resolve; the coverage direction additionally requires every
// EXPERIMENTS.md heading ID to be cited from CHANGES.md or DESIGN.md.
var expRefFiles = []string{"README.md", "DESIGN.md", "OBSERVABILITY.md", "CHANGES.md", "ROADMAP.md"}

// LintExperimentIDs keeps the experiment namespace coherent:
//
//   - every EXPERIMENTS.md heading ID (ranges like "E3-E6" expand) is
//     declared exactly once;
//   - every E<n> reference in the repository docs — README, DESIGN,
//     OBSERVABILITY, CHANGES, ROADMAP, and EXPERIMENTS.md body text —
//     resolves to a heading;
//   - every heading ID is cited from CHANGES.md or DESIGN.md, so each
//     experiment is anchored to the change that introduced it or to
//     the design doc's experiment index.
//
// Roots without EXPERIMENTS.md are skipped.
func LintExperimentIDs(root string) []string {
	expPath := filepath.Join(root, "EXPERIMENTS.md")
	data, err := os.ReadFile(expPath)
	if err != nil {
		return nil
	}

	var findings []string
	headings := map[int]int{} // experiment number -> first heading line
	var bodyRefs []expRef
	for i, line := range strings.Split(string(data), "\n") {
		ids := experimentIDs(line)
		if strings.HasPrefix(strings.TrimSpace(line), "#") {
			for _, id := range ids {
				if first, dup := headings[id]; dup {
					findings = append(findings, fmt.Sprintf(
						"EXPERIMENTS.md:%d: experiment E%d already declared by the heading on line %d", i+1, id, first))
					continue
				}
				headings[id] = i + 1
			}
			continue
		}
		for _, id := range ids {
			bodyRefs = append(bodyRefs, expRef{file: "EXPERIMENTS.md", line: i + 1, id: id})
		}
	}

	refs := bodyRefs
	citedFromIndex := map[int]bool{} // cited in CHANGES.md or DESIGN.md
	for _, name := range expRefFiles {
		data, err := os.ReadFile(filepath.Join(root, name))
		if err != nil {
			continue
		}
		index := name == "CHANGES.md" || name == "DESIGN.md"
		for i, line := range strings.Split(string(data), "\n") {
			for _, id := range experimentIDs(line) {
				refs = append(refs, expRef{file: name, line: i + 1, id: id})
				if index {
					citedFromIndex[id] = true
				}
			}
		}
	}

	for _, r := range refs {
		if _, ok := headings[r.id]; !ok {
			findings = append(findings, fmt.Sprintf(
				"%s:%d: experiment E%d is referenced but has no EXPERIMENTS.md heading", r.file, r.line, r.id))
		}
	}
	for _, id := range sortedInts(headings) {
		if !citedFromIndex[id] {
			findings = append(findings, fmt.Sprintf(
				"EXPERIMENTS.md:%d: experiment E%d is not referenced from CHANGES.md or DESIGN.md", headings[id], id))
		}
	}
	return findings
}

// expRef is one experiment-ID mention for error reporting.
type expRef struct {
	file string
	line int
	id   int
}

// experimentIDs extracts the experiment numbers mentioned on one line,
// expanding ranges; a malformed range (end below start, or absurdly
// wide) is treated as two independent IDs.
func experimentIDs(line string) []int {
	var ids []int
	for _, m := range expID.FindAllStringSubmatch(line, -1) {
		lo, _ := strconv.Atoi(m[1])
		if m[2] == "" {
			ids = append(ids, lo)
			continue
		}
		hi, _ := strconv.Atoi(m[2])
		if hi < lo || hi-lo > 100 {
			ids = append(ids, lo, hi)
			continue
		}
		for id := lo; id <= hi; id++ {
			ids = append(ids, id)
		}
	}
	return ids
}

// sortedKeys returns a map's string keys in sorted order.
func sortedKeys(m map[string]bool) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// sortedInts returns a map's int keys in sorted order.
func sortedInts(m map[int]int) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}
