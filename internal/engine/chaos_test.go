package engine

import (
	"fmt"
	"sync"
	"testing"

	"hypersort/internal/cube"
	"hypersort/internal/machine"
	"hypersort/internal/obs"
	"hypersort/internal/workload"
	"hypersort/internal/xrand"
)

// TestChaosRecoveryEndToEnd is the acceptance smoke: a clean run
// establishes the healthy makespan, a kill is armed at half of it, and
// the re-run must die mid-sort, diagnose, replan, and still produce the
// full sorted input — with the recovery instruments populated.
func TestChaosRecoveryEndToEnd(t *testing.T) {
	e := New(2, 2)
	defer e.Close()
	reg := obs.NewRegistry()
	e.Instrument(reg)

	cfg := Config{Dim: 4}
	keys := workload.MustGenerate(workload.Uniform, 500, xrand.New(61))

	clean := e.Do(Request{Config: cfg, Op: OpSort, Keys: keys})
	if clean.Err != nil {
		t.Fatal(clean.Err)
	}
	mid := clean.Res.Makespan / 2
	if mid <= 0 {
		t.Fatalf("healthy makespan %d too small to bisect", clean.Res.Makespan)
	}
	if err := e.InjectFault(cfg, machine.Injection{Kind: machine.KillNode, Node: 5, At: mid}); err != nil {
		t.Fatal(err)
	}

	res := e.Do(Request{Config: cfg, Op: OpSort, Keys: keys})
	if res.Err != nil {
		t.Fatalf("recovery failed: %v", res.Err)
	}
	if !keysEqual(res.Keys, sortedRef(keys)) {
		t.Fatal("recovered output is not the sorted input")
	}
	m := e.Metrics()
	if m.Replans < 1 {
		t.Fatalf("Replans = %d, want >= 1", m.Replans)
	}
	if m.Unrecoverable != 0 {
		t.Fatalf("Unrecoverable = %d, want 0", m.Unrecoverable)
	}
	snap := reg.Snapshot()
	if v := snap["hypersort_engine_recovery_latency_ns"]; v.Count < 1 {
		t.Fatalf("recovery latency histogram empty: %+v", v)
	}
	if v := snap["hypersort_engine_replans_total"]; v.Value < 1 {
		t.Fatalf("replans counter = %d", v.Value)
	}
	if v := snap["hypersort_engine_keys_redistributed_total"]; v.Value < int64(len(keys)) {
		t.Fatalf("keys redistributed = %d, want >= %d", v.Value, len(keys))
	}
}

// chaosScenario is one randomized mid-run kill schedule: an initial
// static fault set plus a sequence of victims struck live, with the
// total casualty count inside the paper's r <= n-1 guarantee band.
type chaosScenario struct {
	dim     int
	faults  []cube.NodeID
	victims []cube.NodeID
	keys    int
}

// drawScenario derives a within-budget scenario from (dim, seed). The
// same pair always yields the same scenario, so a failing case is
// reproducible from the subtest name alone.
func drawScenario(dim int, seed uint64) chaosScenario {
	rng := xrand.New(seed)
	budget := dim - 1
	r0 := rng.IntN(budget) // initial static faults, 0..budget-1
	kills := 1 + rng.IntN(budget-r0)
	perm := rng.Perm(1 << dim)
	sc := chaosScenario{dim: dim, keys: 150 + rng.IntN(350)}
	for _, v := range perm[:r0] {
		sc.faults = append(sc.faults, cube.NodeID(v))
	}
	for _, v := range perm[r0 : r0+kills] {
		sc.victims = append(sc.victims, cube.NodeID(v))
	}
	return sc
}

// runScenario arms the kill schedule and executes one sort. Victim k is
// armed on the configuration recovery reaches after k prior casualties
// (base faults plus victims[:k]) — the plan key canonicalizes fault
// order, so these are exactly the pools the nested recovery runs lease
// from — which makes the kills strike sequentially, each one hitting the
// recovery run of the previous one.
func runScenario(t *testing.T, e *Engine, sc chaosScenario) Result {
	t.Helper()
	for k, v := range sc.victims {
		cfgK := Config{Dim: sc.dim, Faults: append(append([]cube.NodeID(nil), sc.faults...), sc.victims[:k]...)}
		if err := e.InjectFault(cfgK, machine.Injection{Kind: machine.KillNode, Node: v, At: machine.Time(k)}); err != nil {
			t.Fatalf("arm victim %d on level %d: %v", v, k, err)
		}
	}
	keys := workload.MustGenerate(workload.Uniform, sc.keys, xrand.New(uint64(sc.keys)))
	res := e.Do(Request{Config: Config{Dim: sc.dim, Faults: sc.faults}, Op: OpSort, Keys: keys})
	if res.Err == nil && !keysEqual(res.Keys, sortedRef(keys)) {
		t.Fatal("output is not the sorted input")
	}
	return res
}

// TestChaosPropertySeeded is the randomized chaos property: across
// n = 3..6 and seeded kill schedules with total casualties <= n-1, the
// sort must always complete with the correct sorted output, one replan
// per fired kill, and no unrecoverable verdicts.
func TestChaosPropertySeeded(t *testing.T) {
	trials := 3
	if testing.Short() {
		trials = 1
	}
	for dim := 3; dim <= 6; dim++ {
		for seed := uint64(1); seed <= uint64(trials); seed++ {
			t.Run(fmt.Sprintf("n%d/seed%d", dim, seed), func(t *testing.T) {
				sc := drawScenario(dim, seed)
				e := New(1, 1)
				defer e.Close()
				res := runScenario(t, e, sc)
				if res.Err != nil {
					t.Fatalf("scenario %+v must recover (within budget), got: %v", sc, res.Err)
				}
				m := e.Metrics()
				if m.Replans != int64(len(sc.victims)) {
					t.Fatalf("Replans = %d, want %d (one per kill); scenario %+v", m.Replans, len(sc.victims), sc)
				}
				if m.Unrecoverable != 0 {
					t.Fatalf("Unrecoverable = %d on a within-budget scenario %+v", m.Unrecoverable, sc)
				}
			})
		}
	}
}

// TestChaosRecoveredOutputDeterministic runs the same scenario on two
// fresh engines: the recovered output, the degraded makespan, and the
// replan count must be bit-identical — recovery is as deterministic as
// the healthy path.
func TestChaosRecoveredOutputDeterministic(t *testing.T) {
	sc := drawScenario(5, 7)
	run := func() (Result, Metrics) {
		e := New(1, 1)
		defer e.Close()
		res := runScenario(t, e, sc)
		return res, e.Metrics()
	}
	a, am := run()
	b, bm := run()
	if a.Err != nil || b.Err != nil {
		t.Fatalf("runs failed: %v / %v", a.Err, b.Err)
	}
	if !keysEqual(a.Keys, b.Keys) {
		t.Fatal("recovered outputs diverge between identical runs")
	}
	if a.Res.Makespan != b.Res.Makespan {
		t.Fatalf("recovered makespans diverge: %d vs %d", a.Res.Makespan, b.Res.Makespan)
	}
	if am.Replans != bm.Replans {
		t.Fatalf("replan counts diverge: %d vs %d", am.Replans, bm.Replans)
	}
}

// TestChaosConcurrentInjectionRace races live arming against in-flight
// dispatch: worker goroutines sort continuously while another goroutine
// repeatedly arms the same single-victim kill. Every request must end
// with the correct sorted output whether it ran before the arm, died and
// recovered, or started on an already-degraded pool. Run under -race
// this doubles as the injector/dispatcher memory-safety check.
func TestChaosConcurrentInjectionRace(t *testing.T) {
	e := New(2, 4)
	defer e.Close()
	cfg := Config{Dim: 4}
	keys := workload.MustGenerate(workload.Uniform, 200, xrand.New(77))
	want := sortedRef(keys)

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			if err := e.InjectFault(cfg, machine.Injection{Kind: machine.KillNode, Node: 3, At: machine.Time(i)}); err != nil {
				errs <- fmt.Errorf("arm %d: %w", i, err)
				return
			}
		}
	}()
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				res := e.Do(Request{Config: cfg, Op: OpSort, Keys: keys})
				if res.Err != nil {
					errs <- fmt.Errorf("sort: %w", res.Err)
					return
				}
				if !keysEqual(res.Keys, want) {
					errs <- fmt.Errorf("unsorted output under concurrent injection")
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if m := e.Metrics(); m.Unrecoverable != 0 {
		t.Fatalf("single repeated victim on Q_4 is within budget; Unrecoverable = %d", m.Unrecoverable)
	}
}
