package machine

import (
	"sync"
	"testing"

	"hypersort/internal/cube"
	"hypersort/internal/sortutil"
)

func TestSizeClassRoundTrip(t *testing.T) {
	// Every buffer get hands out must land back in a class whose get size
	// its capacity can serve: put(get(n)) must be reusable for n.
	kp := &keyPool{}
	for _, n := range []int{1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 1000, 1024, 1025, 1 << 20} {
		b := kp.get(n)
		if len(b) != n {
			t.Fatalf("get(%d) returned len %d", n, len(b))
		}
		ptr := &b[0]
		kp.put(b)
		b2 := kp.get(n)
		if &b2[0] != ptr {
			t.Errorf("get(%d) after put did not recycle the buffer", n)
		}
	}
}

func TestPoolGetZero(t *testing.T) {
	kp := &keyPool{}
	if b := kp.get(0); b != nil {
		t.Fatalf("get(0) = %v, want nil", b)
	}
	kp.put(nil) // must not panic
}

func TestPoolBoundedPerClass(t *testing.T) {
	kp := &keyPool{}
	for i := 0; i < maxPerClass+50; i++ {
		kp.put(make([]sortutil.Key, 8))
	}
	fl := &kp.classes[sizeClass(8)]
	if got := len(fl.bufs); got != maxPerClass {
		t.Fatalf("class holds %d buffers, want capped at %d", got, maxPerClass)
	}
}

func TestPoolConcurrentGetPut(t *testing.T) {
	kp := &keyPool{}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				n := 1 + (g*13+i)%300
				b := kp.get(n)
				for j := range b {
					b[j] = sortutil.Key(n)
				}
				kp.put(b)
			}
		}(g)
	}
	wg.Wait()
}

// TestRecycledPayloadNotAliased runs many rounds of message traffic with
// release poisoning on and asserts no kernel ever observes the poison
// sentinel: a recycled buffer must never be visible through a previously
// received (and released) slice, across kernels and across runs. The
// ring-exchange kernel releases every payload immediately after copying
// it out, so every buffer cycles through the pool each round.
func TestRecycledPayloadNotAliased(t *testing.T) {
	SetReleasePoison(true)
	defer SetReleasePoison(false)

	m := MustNew(Config{Dim: 4})
	parts := m.Healthy()
	const rounds = 20
	for run := 0; run < 5; run++ {
		_, err := m.Run(parts, func(p *Proc) error {
			next := cube.NodeID((int(p.ID()) + 1) % len(parts))
			prev := cube.NodeID((int(p.ID()) + len(parts) - 1) % len(parts))
			val := sortutil.Key(int(p.ID()) + run*1000)
			payload := []sortutil.Key{val, val + 1, val + 2}
			for r := 0; r < rounds; r++ {
				p.Send(next, Tag(r), payload)
				got := p.Recv(prev, Tag(r))
				want := sortutil.Key(int(prev) + run*1000)
				for i, k := range got {
					if k == poisonKey {
						t.Errorf("run %d round %d: node %d observed poisoned payload", run, r, p.ID())
					}
					if k != want+sortutil.Key(i) {
						t.Errorf("run %d round %d: node %d got[%d] = %d, want %d", run, r, p.ID(), i, k, want+sortutil.Key(i))
					}
				}
				p.Release(got)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestReleasePoisonDetectsUseAfterRelease is the positive control for the
// aliasing tests: a kernel that (illegally) reads a buffer after Release,
// once the pool has recycled it into a new Send, must observe either the
// poison sentinel or the new owner's data — never stale original data
// presented as fresh. This pins the poisoning machinery the sort-level
// aliasing tests rely on.
func TestReleasePoisonDetectsUseAfterRelease(t *testing.T) {
	SetReleasePoison(true)
	defer SetReleasePoison(false)

	m := MustNew(Config{Dim: 1})
	_, err := m.Run([]cube.NodeID{0, 1}, func(p *Proc) error {
		if p.ID() == 1 {
			p.Send(0, 1, []sortutil.Key{42, 42, 42, 42})
			p.Send(0, 2, []sortutil.Key{7, 7, 7, 7})
			return nil
		}
		got := p.Recv(1, 1)
		p.Release(got)
		// got is now illegal to read. The release poisoned it, so the
		// stale view must be the sentinel (until a new Send reuses it).
		if got[0] != poisonKey {
			t.Errorf("released buffer reads %d, want poison sentinel", got[0])
		}
		second := p.Recv(1, 2)
		p.Release(second)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
