// Package direct is the host-speed execution substrate: it compiles a
// cached partition plan's kernel structure (core.Layout) into a flat
// schedule of compare-split rounds and executes it directly on the host
// — parallel local sorts over per-slot arena slices, then in-memory
// compare-splits following the plan's exchange pairs — with no simulated
// machines, mailboxes, or virtual clocks.
//
// The schedule replays exactly the dataflow of the simulated kernel
// (core's Steps 3-8): each working slot's chunk meets the same partners
// in the same order with the same keep-low/keep-high decisions, and the
// compare-split arithmetic is the same sortutil.CompareSplitInto both
// substrates agree on. Because pairs within a round are disjoint and the
// per-pair operation is deterministic, the direct output is bit-identical
// to the simulated run's — the property the parity suite in this package
// pins for every plan shape, healthy and degraded.
//
// What the simulator measures, direct mode predicts: Predict evaluates
// the §3 closed-form makespan (core.CostEstimate) and reconstructs the
// simulator's work counters from the schedule (pair count, share size,
// and per-pair route hops). For the partial fault model without link
// faults the predicted Messages/KeysSent/KeyHops/Comparisons equal the
// simulated counters exactly; with detour routing (total model or dead
// links) KeyHops is a Hamming-distance lower bound. The simulator stays
// the oracle: the engine cross-checks sampled direct results against it
// (see engine.SetOracleSample) and remains the only execution path while
// chaos injections are armed.
package direct

import (
	"runtime"
	"sync"

	"hypersort/internal/core"
	"hypersort/internal/cube"
	"hypersort/internal/machine"
	"hypersort/internal/sortutil"
	"hypersort/internal/workload"
)

// pair is one compare-split between two working slots: after the round,
// lo holds the k smallest keys of the union and hi the k largest.
type pair struct {
	lo, hi int32
}

// Schedule is a compiled plan: the flat sequence of compare-split rounds
// the fault-tolerant sort performs, in kernel order. Pairs within one
// round are disjoint (they model one parallel kernel step), so a round
// may execute its pairs in any order — or concurrently — with identical
// results. A Schedule is immutable after Compile and safe to share; the
// engine caches one alongside each plan entry.
type Schedule struct {
	layout *core.Layout
	p      int     // number of working slots (= len(layout.Working))
	pairs  []pair  // all rounds' pairs, flattened
	rounds []int32 // rounds[r] = end offset (exclusive) of round r in pairs
	// hopSum is the per-direction route hops summed over all pairs
	// (Hamming distance between the pair's physical addresses; merge
	// partners are physically adjacent, cross-subcube partners need not
	// be). KeyHops prediction = 2k * hopSum.
	hopSum int64
}

// Compile flattens layout's kernel structure into a Schedule, replaying
// core's Steps 3-8 loop order: the intra-subcube bitonic network
// (ascending iff the subcube address is even), then for each cut
// dimension pass (i, j) one cross-subcube exchange round followed by the
// full intra-subcube re-sort network with the paper's direction rule
// (ascending iff v_{j-1} == mask). Dead pairs are skipped exactly where
// the simulated kernel skips them.
func Compile(l *core.Layout) *Schedule {
	sch := &Schedule{layout: l, p: len(l.Working)}
	sp := l.Plan.Split
	// Step 3: intra-subcube sort, ascending iff the subcube address is
	// even.
	sch.mergeRounds(func(v cube.NodeID) bool { return cube.Bit(v, 0) == 0 })
	for i := 0; i < sp.M(); i++ {
		for j := i; j >= 0; j-- {
			// Step 7: compare-split with the corresponding reindexed
			// processor of the dimension-j neighbor subcube.
			sch.crossRound(i, j)
			// Step 8: re-sort each subcube; ascending iff v_{j-1} == mask
			// (v_{-1} taken as 0).
			sch.mergeRounds(func(v cube.NodeID) bool {
				mask := cube.Bit(v, i+1)
				prev := 0
				if j > 0 {
					prev = cube.Bit(v, j-1)
				}
				return prev == mask
			})
		}
	}
	return sch
}

// mergeRounds appends the s(s+1)/2 rounds of the full intra-subcube
// bitonic network (bitonic.Ctx.MergeView) for every subcube at once,
// with per-subcube direction chosen by ascending. Each round emits one
// pair per live logical pair of each subcube, from the low-logical side,
// skipping dead pairs per the paper's rule.
func (sch *Schedule) mergeRounds(ascending func(v cube.NodeID) bool) {
	l := sch.layout
	sp := l.Plan.Split
	s := sp.S()
	numSub := sp.NumSubcubes()
	size := cube.NodeID(1) << s
	for si := 0; si < s; si++ {
		for sj := si; sj >= 0; sj-- {
			n := len(sch.pairs)
			for v := 0; v < numSub; v++ {
				view := &l.Views[v]
				asc := ascending(cube.NodeID(v))
				for t := cube.NodeID(0); t < size; t++ {
					if cube.Bit(t, sj) != 0 {
						continue // emit each pair once, from its bit-sj=0 side
					}
					if view.Dead && t == 0 {
						continue // dead pair: both sides skip the step
					}
					peer := t | 1<<sj
					// MergeView's rule from the t side: keepLow iff the
					// direction bit (bit si+1 of t, shared with peer since
					// sj <= si) equals bit sj of t, which is 0 here.
					lowT := cube.Bit(t, si+1) == 0
					if !asc {
						lowT = !lowT
					}
					a := int32(l.SlotOf[view.Phys(t)])
					b := int32(l.SlotOf[view.Phys(peer)])
					if lowT {
						sch.pairs = append(sch.pairs, pair{lo: a, hi: b})
					} else {
						sch.pairs = append(sch.pairs, pair{lo: b, hi: a})
					}
					sch.hopSum++ // merge partners are physically adjacent
				}
			}
			if len(sch.pairs) > n {
				sch.rounds = append(sch.rounds, int32(len(sch.pairs)))
			}
		}
	}
}

// crossRound appends one Step 7 round: every live logical address t of
// every subcube v with bit j clear exchanges with the same t of subcube
// v XOR 2^j. The bit-j=0 side keeps the smaller keys iff mask (bit i+1
// of v, shared by both subcubes since j <= i) is 0. Deadness is uniform
// at logical 0 across subcubes (partition.Plan assigns every subcube a
// dead processor when any has one), so a live t is live on both sides.
func (sch *Schedule) crossRound(i, j int) {
	l := sch.layout
	sp := l.Plan.Split
	numSub := sp.NumSubcubes()
	n := len(sch.pairs)
	for v := 0; v < numSub; v++ {
		if cube.Bit(cube.NodeID(v), j) != 0 {
			continue
		}
		v2 := sp.NeighborSubcube(cube.NodeID(v), j)
		viewA, viewB := &l.Views[v], &l.Views[v2]
		mask := cube.Bit(cube.NodeID(v), i+1)
		size := cube.NodeID(viewA.Size())
		for t := cube.NodeID(0); t < size; t++ {
			if viewA.Dead && t == 0 {
				continue
			}
			pa, pb := viewA.Phys(t), viewB.Phys(t)
			a := int32(l.SlotOf[pa])
			b := int32(l.SlotOf[pb])
			sch.hopSum += int64(cube.HammingDistance(pa, pb))
			if mask == 0 {
				sch.pairs = append(sch.pairs, pair{lo: a, hi: b})
			} else {
				sch.pairs = append(sch.pairs, pair{lo: b, hi: a})
			}
		}
	}
	if len(sch.pairs) > n {
		sch.rounds = append(sch.rounds, int32(len(sch.pairs)))
	}
}

// P returns the number of working slots the schedule distributes over.
func (sch *Schedule) P() int { return sch.p }

// NumRounds returns the number of non-empty compare-split rounds.
func (sch *Schedule) NumRounds() int { return len(sch.rounds) }

// NumPairs returns the total number of compare-split pairs over all
// rounds — the work count Predict's communication terms scale with.
func (sch *Schedule) NumPairs() int { return len(sch.pairs) }

// shareSize returns the padded per-slot share size k for nKeys keys,
// matching workload.DistributeInto (ceil, floor 1).
func (sch *Schedule) shareSize(nKeys int) int64 {
	q := (nKeys + sch.p - 1) / sch.p
	if q == 0 {
		q = 1
	}
	return int64(q)
}

// heapCost is the paper's worst-case heapsort comparison count for k
// keys, (k-1)*ceil(log2 k)+1 — the amount bitonic.Ctx.LocalSort charges
// the simulated clock, reconstructed here for the predicted counters.
func heapCost(k int64) int64 {
	if k <= 1 {
		return 1
	}
	var log int64
	for v := k - 1; v > 0; v >>= 1 {
		log++
	}
	return (k-1)*log + 1
}

// Predict returns the analytic machine.Result a simulated run of nKeys
// keys would report: Makespan from the §3 closed form
// (core.CostEstimate) and the work counters reconstructed from the
// schedule. A zero cost model normalizes to machine.PaperCostModel, the
// same default machine.New applies.
//
// Exactness: Messages, KeysSent, and Comparisons equal the simulated
// full-block-protocol counters exactly (each pair is one send and one
// k-comparison compare-split per side, each slot one heapsort charge).
// KeyHops is exact under Hamming routing (partial fault model, no link
// faults) and a lower bound under detour routing. Makespan is the
// paper's worst-case bound, not the simulated critical path — the cost
// validation suite pins its observed accuracy band. RecvWaits and
// PerNode are host-scheduling diagnostics with no direct-mode analogue
// and stay zero/nil.
func (sch *Schedule) Predict(nKeys int, cost machine.CostModel) (machine.Result, error) {
	if (cost == machine.CostModel{}) {
		cost = machine.PaperCostModel()
	}
	plan := sch.layout.Plan
	makespan, err := core.CostEstimate(nKeys, plan.Cube.Dim(), plan.Split.M(), plan.HasDead, cost)
	if err != nil {
		return machine.Result{}, err
	}
	k := sch.shareSize(nKeys)
	npairs := int64(len(sch.pairs))
	return machine.Result{
		Makespan:    makespan,
		Messages:    2 * npairs,
		KeysSent:    2 * k * npairs,
		KeyHops:     2 * k * sch.hopSum,
		Comparisons: int64(sch.p)*heapCost(k) + 2*k*npairs,
	}, nil
}

// parallelThreshold is the padded key count (p*q) below which Sort runs
// single-threaded: under it, the local sorts and rounds finish in tens
// of microseconds and goroutine fan-out would cost more than it saves.
// Batch-level parallelism (many requests on many lanes) covers the
// small-input regime instead.
const parallelThreshold = 1 << 15

// Exec executes a Schedule with retained arenas: one backing array for
// the shares, one for the compare-split scratch, re-carved per Sort so
// the steady state allocates only the gathered output. An Exec is NOT
// safe for concurrent use — the engine pools them per plan entry and
// each request borrows one.
type Exec struct {
	sched       *Schedule
	backing     []sortutil.Key
	shares      [][]sortutil.Key
	scratchBack []sortutil.Key
	scratch     [][]sortutil.Key
}

// NewExec builds an executor for sch with empty arenas; the first Sort
// sizes them.
func NewExec(sch *Schedule) *Exec { return &Exec{sched: sch} }

// Sort sorts keys ascending by executing the compiled schedule on the
// host. keys is read-only (the shares are copies, exactly like the
// simulated distribution); the returned slice is freshly allocated.
// Inputs past parallelThreshold padded keys run the local sorts and each
// round's pairs across GOMAXPROCS-bounded workers — deterministically,
// since a round's pairs touch disjoint slots.
func (x *Exec) Sort(keys []sortutil.Key) ([]sortutil.Key, error) {
	sch := x.sched
	p := sch.p
	var err error
	// Re-carving BOTH arenas every call resets the buffer permutation
	// left by the previous run's ping-pong and header swaps, so a share
	// and its scratch can never alias.
	x.backing, x.shares, err = workload.DistributeInto(x.backing, x.shares, keys, p)
	if err != nil {
		return nil, err
	}
	q := len(x.shares[0])
	if cap(x.scratchBack) < p*q {
		x.scratchBack = make([]sortutil.Key, p*q)
	}
	if cap(x.scratch) < p {
		x.scratch = make([][]sortutil.Key, p)
	} else {
		x.scratch = x.scratch[:p]
	}
	for i := 0; i < p; i++ {
		x.scratch[i] = x.scratchBack[i*q : (i+1)*q : (i+1)*q]
	}

	workers := 1
	if p*q >= parallelThreshold {
		if workers = runtime.GOMAXPROCS(0); workers > p {
			workers = p
		}
	}

	// Step 3 local sorts: every slot, independently.
	parallelFor(workers, p, func(i int) {
		sortutil.SortHost(x.shares[i], sortutil.Ascending)
	})

	// Compare-split rounds, in schedule order; pairs within a round are
	// disjoint, so order within a round is free.
	start := int32(0)
	for _, end := range sch.rounds {
		pairs := sch.pairs[start:end]
		parallelFor(workers, len(pairs), func(i int) {
			x.step(pairs[i])
		})
		start = end
	}

	out := make([]sortutil.Key, 0, p*q)
	for _, sh := range x.shares {
		out = append(out, sh...)
	}
	return sortutil.StripInf(out), nil
}

// step performs one compare-split pair: afterwards slot pr.lo holds the
// k smallest keys of the two slots' union and pr.hi the k largest, both
// sorted ascending. The separated-chunk fast paths mirror the simulated
// kernel's (bitonic.Ctx.compareExchange) including tie-breaking, so the
// kept values are identical either way.
func (x *Exec) step(pr pair) {
	a, b := x.shares[pr.lo], x.shares[pr.hi]
	k := len(a)
	if k == 0 {
		return
	}
	if a[k-1] <= b[0] {
		return // already separated: both sides keep their chunk
	}
	if b[k-1] < a[0] {
		// Fully crossed: swap the slice headers instead of copying.
		x.shares[pr.lo], x.shares[pr.hi] = b, a
		return
	}
	dlo := sortutil.CompareSplitInto(x.scratch[pr.lo][:k], a, b, true)
	dhi := sortutil.CompareSplitInto(x.scratch[pr.hi][:k], b, a, false)
	x.shares[pr.lo], x.scratch[pr.lo] = dlo, a
	x.shares[pr.hi], x.scratch[pr.hi] = dhi, b
}

// parallelFor runs f(0..n-1) across at most workers goroutines with a
// deterministic striped assignment (worker w takes i = w, w+workers,
// ...). workers <= 1 runs inline.
func parallelFor(workers, n int, f func(i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			f(i)
		}
		return
	}
	var wg sync.WaitGroup
	wg.Add(workers - 1)
	for w := 1; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for i := w; i < n; i += workers {
				f(i)
			}
		}(w)
	}
	for i := 0; i < n; i += workers {
		f(i)
	}
	wg.Wait()
}
