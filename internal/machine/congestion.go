package machine

import (
	"fmt"
	"sort"

	"hypersort/internal/cube"
	"hypersort/internal/routing"
	"hypersort/internal/sortutil"
)

// This file is the machine half of multi-path routing and link
// congestion. Two deterministic mechanisms, both inert unless the
// configuration opts in (Config.Routing = RouteMultipath, or a non-empty
// Config.HotLinks):
//
//  1. Inline pricing. Send walks the memoized disjoint paths of the
//     (src, dst) pair and prices each path edge by edge — per-key
//     transfer, per-hop startup, plus the per-traversal surcharge of any
//     hot link. Large transfers are striped across the vertex-disjoint
//     paths when the modeled arrival improves: each path carries a
//     contiguous segment, the sender pays the worst first-edge injection
//     (the NCUBE's per-link DMA channels inject in parallel), and the
//     message arrives when its slowest segment does. Everything is
//     computed from the sender's own clock and immutable path sets, so
//     virtual time stays exactly as deterministic as the single-path
//     model.
//
//  2. Post-run occupancy replay. Queueing on shared links cannot be
//     charged inline without making results depend on host scheduling
//     (two concurrent goroutines reserving the same link's occupancy
//     table would race, and busy-until reservation is not commutative).
//     Instead every congested send appends a record to its node's local
//     log; after the run the logs are merged, sorted by the
//     deterministic key (departure time, sender, sequence), and replayed
//     through a per-edge busy-until table advanced in virtual time. The
//     replay yields the per-link queueing waits, the per-dimension wait
//     split, the hottest link's traversal count, and the latest queued
//     delivery time — and the run's makespan is raised to that delivery
//     time, so concurrent messages on one edge serialize in the reported
//     result instead of riding for free.
//
// Exact bit-compatibility conditions are documented in DESIGN.md §12:
// with Routing == RouteSingle and no hot links, none of this code runs
// and every result is identical to the hop-only model.

// RoutingPolicy selects the machine's path discipline.
type RoutingPolicy int

const (
	// RouteSingle is the legacy discipline: one path per message
	// (e-cube, or DFS fault-avoiding under the total model), priced by
	// hop count alone. The default.
	RouteSingle RoutingPolicy = iota
	// RouteMultipath constructs vertex-disjoint path sets per pair and
	// stripes large transfers across them, with congestion-aware
	// pricing (hot-link surcharges inline, link queueing in the
	// post-run replay).
	RouteMultipath
)

// String implements fmt.Stringer.
func (r RoutingPolicy) String() string {
	if r == RouteMultipath {
		return "multipath"
	}
	return "ecube"
}

// stripeMinKeys is the smallest payload Send considers striping: below
// it the per-path startup overhead dominates whatever the parallel
// links save, and the modeled-arrival comparison would reject the
// stripe anyway — this constant just skips the arithmetic.
const stripeMinKeys = 32

// congestion is the machine's congestion-pricing state, shared by
// Clones (all fields immutable after New).
type congestion struct {
	mpr *routing.MultiPathRouter
	// hot maps an edge to the extra virtual time every traversal of it
	// pays (a hot link: contended by outside traffic, degraded, or
	// chaos-injected by an experiment).
	hot map[cube.Edge]Time
	// multipath enables striping; false means hot-link pricing only
	// (Routing == RouteSingle with HotLinks set).
	multipath bool
}

// hotCost returns the surcharge for traversing edge a-b.
func (cs *congestion) hotCost(a, b cube.NodeID) Time {
	if len(cs.hot) == 0 {
		return 0
	}
	return cs.hot[cube.NewEdge(a, b)]
}

// pathCost prices moving keys along path p: per edge, the per-hop
// startup, the per-key transfer, and the hot surcharge. first is the
// price of the initial edge (the sender-serializing injection), rest
// the store-and-forward remainder.
func (cs *congestion) pathCost(p routing.Path, keys int, c CostModel) (first, rest Time) {
	if p.Hops() == 0 {
		return 0, 0
	}
	perHop := c.Startup + Time(keys)*c.Elem
	first = perHop + cs.hotCost(p[0], p[1])
	for i := 2; i < len(p); i++ {
		rest += perHop + cs.hotCost(p[i-1], p[i])
	}
	return first, rest
}

// sendRec is one congested segment's replay record, logged by the
// sender into its node-local slice (no cross-goroutine state touched
// during the run).
type sendRec struct {
	depart  Time // sender's clock when Send was called
	seq     int64
	src     cube.NodeID
	dst     cube.NodeID
	pathIdx int32
	keys    int32
}

// sendCongested is Send's congestion-priced body: route over the
// memoized disjoint paths, stripe when it helps, log for the replay.
// Counter and trace semantics mirror the plain path; the payload is
// delivered as one reassembled message (segments are contiguous ranges
// in path order, so reassembly is a single copy and bit-identical by
// construction).
func (p *Proc) sendCongested(cs *congestion, dst cube.NodeID, tag Tag, keys []sortutil.Key) {
	paths, err := cs.mpr.Paths(p.nd.id, dst)
	if err != nil {
		p.fail(fmt.Errorf("machine: node %d cannot reach %d: %w", p.nd.id, dst, err))
	}
	c := p.m.cfg.Cost
	depart := p.nd.clock

	// Single-path plan: everything on the primary path.
	first0, rest0 := cs.pathCost(paths[0], len(keys), c)
	single := first0 + rest0

	// Striped plan: contiguous segments across the disjoint paths,
	// injected in parallel (sender pays the worst first edge), arriving
	// when the slowest segment does.
	var segs []int
	if cs.multipath && len(paths) > 1 && len(keys) >= stripeMinKeys {
		segs = routing.SplitSegments(len(keys), len(paths))
		var worstFirst, worstTotal Time
		for i, n := range segs {
			f, r := cs.pathCost(paths[i], n, c)
			if f > worstFirst {
				worstFirst = f
			}
			if f+r > worstTotal {
				worstTotal = f + r
			}
		}
		if worstTotal >= single {
			segs = nil // striping would not improve the modeled arrival
		} else {
			first0 = worstFirst
			single = worstTotal
		}
	}

	p.nd.clock += first0 // injection serializes at the sender
	arrival := depart + single
	if arrival < p.nd.clock {
		arrival = p.nd.clock
	}

	payload := p.payloadGet(len(keys))
	copy(payload, keys)
	nseg := 1
	if segs != nil {
		nseg = len(segs)
		p.nd.striped++
	}
	p.nd.msgsSent += int64(nseg)
	p.nd.keysSent += int64(len(keys))
	if segs != nil {
		for i, n := range segs {
			p.nd.keyHops += int64(n) * int64(paths[i].Hops())
			p.nd.slog = append(p.nd.slog, sendRec{depart: depart, seq: p.nd.seq, src: p.nd.id, dst: dst, pathIdx: int32(i), keys: int32(n)})
			p.nd.seq++
		}
	} else {
		p.nd.keyHops += int64(len(keys)) * int64(paths[0].Hops())
		p.nd.slog = append(p.nd.slog, sendRec{depart: depart, seq: p.nd.seq, src: p.nd.id, dst: dst, pathIdx: 0, keys: int32(len(keys))})
		p.nd.seq++
	}
	p.m.nodes[dst].box.put(message{src: p.nd.id, tag: tag, arrival: arrival, keys: payload})
	if p.m.cfg.Trace != nil {
		p.m.emit(TraceEvent{Node: p.nd.id, Kind: TraceSend, Peer: dst, Tag: tag, Keys: len(keys), Hops: paths[0].Hops(), Time: p.nd.clock})
	}
}

// congStats is the replay's output.
type congStats struct {
	linkWait Time    // total virtual time segments queued behind busy links
	perDim   []int64 // linkWait split by link dimension
	maxOcc   int64   // traversal count of the hottest single link
	latest   Time    // latest queued delivery time (raises the makespan)
}

// replayCongestion merges every node's send log, orders it by the
// deterministic key (departure time, sender address, per-sender
// sequence), and replays it through a per-edge busy-until table: a
// segment reaching an edge before the edge's previous occupant has
// drained waits for it. Called once per run, after all kernel
// goroutines have finished; determinism follows because both the log
// contents (virtual times) and the replay order are independent of host
// scheduling.
func (m *Machine) replayCongestion() congStats {
	cs := m.cong
	recs := m.replayBuf[:0]
	for _, nd := range m.nodes {
		recs = append(recs, nd.slog...)
	}
	m.replayBuf = recs
	st := congStats{perDim: make([]int64, m.h.Dim())}
	if len(recs) == 0 {
		return st
	}
	sort.Slice(recs, func(i, j int) bool {
		a, b := recs[i], recs[j]
		if a.depart != b.depart {
			return a.depart < b.depart
		}
		if a.src != b.src {
			return a.src < b.src
		}
		return a.seq < b.seq
	})
	busy := make(map[cube.Edge]Time, len(recs))
	occ := make(map[cube.Edge]int64, len(recs))
	c := m.cfg.Cost
	for _, rec := range recs {
		paths, err := cs.mpr.Paths(rec.src, rec.dst)
		if err != nil || int(rec.pathIdx) >= len(paths) {
			continue // cannot happen: the send already routed this pair
		}
		path := paths[rec.pathIdx]
		perHop := c.Startup + Time(rec.keys)*c.Elem
		t := rec.depart
		for i := 1; i < len(path); i++ {
			e := cube.NewEdge(path[i-1], path[i])
			if n := occ[e] + 1; n > st.maxOcc {
				st.maxOcc = n
			}
			occ[e]++
			if b := busy[e]; b > t {
				w := b - t
				st.linkWait += w
				st.perDim[e.Dim()] += int64(w)
				t = b
			}
			dur := perHop + cs.hotCost(path[i-1], path[i])
			busy[e] = t + dur
			t += dur
		}
		if t > st.latest {
			st.latest = t
		}
	}
	return st
}
