// Top-k: the paper's authors' companion problem (their reference [17] is
// "Selection of the First k Largest Processes in Hypercubes") on this
// repository's fault-tolerant substrate. A 64-node hypercube holds sensor
// readings, three nodes have failed, and the operator wants the 10
// largest readings. Two ways: the fault-tolerant full sort, and the
// distributed selection that avoids sorting — same answer, very
// different price.
package main

import (
	"fmt"
	"log"

	"hypersort"
	"hypersort/internal/cube"
	"hypersort/internal/machine"
	"hypersort/internal/partition"
	"hypersort/internal/selection"
	"hypersort/internal/workload"
	"hypersort/internal/xrand"
)

func main() {
	const (
		dim = 6
		k   = 10
	)
	faults := []hypersort.NodeID{4, 33, 59}
	readings := workload.MustGenerate(workload.Gaussian, 50_000, xrand.New(3))

	// Way 1: fault-tolerant full sort via the public API, take the tail.
	s, err := hypersort.New(hypersort.Config{Dim: dim, Faults: faults})
	if err != nil {
		log.Fatal(err)
	}
	sorted, sortStats, err := s.Sort(readings)
	if err != nil {
		log.Fatal(err)
	}
	fromSort := sorted[len(sorted)-k:]

	// Way 2: distributed selection — binary search on the key domain with
	// AllReduce rank counts, same partition layout, no sort.
	faultSet := cube.NewNodeSet(faults...)
	plan, err := partition.BuildPlan(dim, faultSet)
	if err != nil {
		log.Fatal(err)
	}
	mach := machine.MustNew(machine.Config{Dim: dim, Faults: faultSet})
	fromSelect, selStats, err := selection.TopK(mach, plan, readings, k)
	if err != nil {
		log.Fatal(err)
	}

	for i := range fromSort {
		if fromSort[i] != fromSelect[i] {
			log.Fatalf("methods disagree at %d: %d vs %d", i, fromSort[i], fromSelect[i])
		}
	}

	fmt.Printf("top %d of %d readings on Q_%d with %d failed nodes (both methods agree):\n",
		k, len(readings), dim, len(faults))
	for _, v := range fromSelect {
		fmt.Printf("  %d\n", v)
	}
	fmt.Printf("\nfull fault-tolerant sort: %d simulated units\n", sortStats.Makespan)
	fmt.Printf("distributed selection:    %d simulated units (%.1fx cheaper)\n",
		selStats.Makespan, float64(sortStats.Makespan)/float64(selStats.Makespan))
}
