// Command serve runs the concurrent sort engine as an HTTP service —
// the production-shaped front end to the library: many independent
// requests against a recurring set of (dim, faults) configurations,
// served from the engine's plan cache and machine pools.
//
// Usage:
//
//	serve -addr :8080 [-pool 4] [-workers 8]
//	serve -demo [-requests 256] [-m 4000] [-seed 1]
//
// Endpoints:
//
//	POST /v1/sort    one request  {"dim":6,"faults":[3,17],"keys":[...]}
//	POST /v1/batch   {"requests":[...]} — per-request error isolation
//	GET  /v1/metrics engine counters (plan hits, machines built/cloned)
//	                 plus process memory stats (heap, GC, allocation rate)
//	GET  /debug/pprof/  live profiling (heap, allocs, goroutine, profile)
//	GET  /healthz
//
// The -demo flag skips the network entirely and measures batch
// throughput on synthetic traffic: the same requests served by fresh
// per-call construction (plan search + machine build every time) versus
// the warm engine (cached plans, pooled machines), printing both
// wall-clock times and the speedup.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"hypersort"
	"hypersort/internal/workload"
	"hypersort/internal/xrand"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "HTTP listen address")
		pool     = flag.Int("pool", 0, "machines pooled per configuration (0 = GOMAXPROCS)")
		workers  = flag.Int("workers", 0, "concurrent batch requests (0 = GOMAXPROCS)")
		demo     = flag.Bool("demo", false, "run the offline batch-throughput demo and exit")
		requests = flag.Int("requests", 256, "demo: number of requests")
		m        = flag.Int("m", 4000, "demo: keys per request")
		seed     = flag.Uint64("seed", 1, "demo: workload seed")
	)
	flag.Parse()

	eng := hypersort.NewEngine(hypersort.EngineConfig{PoolSize: *pool, BatchWorkers: *workers})
	if *demo {
		defer eng.Close()
		runDemo(eng, *requests, *m, *seed)
		return
	}

	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/v1/metrics", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{
			"engine": eng.Metrics(),
			"memory": readMemMetrics(),
		})
	})
	// Live profiling: `go tool pprof http://host/debug/pprof/allocs` is
	// how the zero-allocation hot path gets verified (and re-verified)
	// against production-shaped traffic.
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/v1/sort", func(w http.ResponseWriter, r *http.Request) {
		var wreq wireRequest
		if !readJSON(w, r, &wreq) {
			return
		}
		req, err := wreq.toRequest()
		if err != nil {
			writeJSON(w, http.StatusBadRequest, wireResult{Err: err.Error()})
			return
		}
		res := eng.SortBatch([]hypersort.Request{req})[0]
		status := http.StatusOK
		if res.Err != nil {
			status = http.StatusUnprocessableEntity
		}
		writeJSON(w, status, toWire(req, res))
	})
	mux.HandleFunc("/v1/batch", func(w http.ResponseWriter, r *http.Request) {
		var body struct {
			Requests []wireRequest `json:"requests"`
		}
		if !readJSON(w, r, &body) {
			return
		}
		reqs := make([]hypersort.Request, len(body.Requests))
		preErr := make([]error, len(body.Requests))
		for i, wr := range body.Requests {
			reqs[i], preErr[i] = wr.toRequest()
		}
		results := eng.SortBatch(reqs)
		out := make([]wireResult, len(results))
		for i, res := range results {
			if preErr[i] != nil {
				out[i] = wireResult{Err: preErr[i].Error()}
				continue
			}
			out[i] = toWire(reqs[i], res)
		}
		writeJSON(w, http.StatusOK, map[string]any{"results": out})
	})

	// Graceful shutdown: SIGINT/SIGTERM stops accepting, drains in-flight
	// requests, then retires the engine's pooled worker goroutines — the
	// teardown half of the persistent-worker substrate.
	srv := &http.Server{Addr: *addr, Handler: mux}
	done := make(chan os.Signal, 1)
	signal.Notify(done, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-done
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			fmt.Fprintln(os.Stderr, "serve: shutdown:", err)
		}
	}()
	fmt.Printf("serve: listening on %s (pool=%d workers=%d)\n", *addr, *pool, *workers)
	if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "serve:", err)
		os.Exit(1)
	}
	eng.Close()
	fmt.Println("serve: drained, workers retired")
}

// wireRequest is the JSON shape of one request.
type wireRequest struct {
	Dim        int        `json:"dim"`
	Faults     []int64    `json:"faults,omitempty"`
	LinkFaults [][2]int64 `json:"link_faults,omitempty"`
	Model      string     `json:"model,omitempty"` // "partial" (default) or "total"
	Op         string     `json:"op,omitempty"`    // "sort" (default), "kth", "median", "topk"
	K          int        `json:"k,omitempty"`
	Keys       []int64    `json:"keys"`
}

func (wr wireRequest) toRequest() (hypersort.Request, error) {
	cfg := hypersort.Config{Dim: wr.Dim}
	for _, f := range wr.Faults {
		cfg.Faults = append(cfg.Faults, hypersort.NodeID(f))
	}
	for _, l := range wr.LinkFaults {
		cfg.LinkFaults = append(cfg.LinkFaults, [2]hypersort.NodeID{hypersort.NodeID(l[0]), hypersort.NodeID(l[1])})
	}
	switch wr.Model {
	case "", "partial":
		cfg.Model = hypersort.Partial
	case "total":
		cfg.Model = hypersort.Total
	default:
		return hypersort.Request{}, fmt.Errorf("unknown fault model %q", wr.Model)
	}
	var op hypersort.Op
	switch wr.Op {
	case "", "sort":
		op = hypersort.OpSort
	case "kth":
		op = hypersort.OpKthSmallest
	case "median":
		op = hypersort.OpMedian
	case "topk":
		op = hypersort.OpTopK
	default:
		return hypersort.Request{}, fmt.Errorf("unknown op %q", wr.Op)
	}
	keys := make([]hypersort.Key, len(wr.Keys))
	for i, k := range wr.Keys {
		keys[i] = hypersort.Key(k)
	}
	return hypersort.Request{Config: cfg, Op: op, Keys: keys, K: wr.K}, nil
}

// wireResult is the JSON shape of one outcome.
type wireResult struct {
	Keys  []int64         `json:"keys,omitempty"`
	Value *int64          `json:"value,omitempty"`
	Stats hypersort.Stats `json:"stats"`
	Err   string          `json:"error,omitempty"`
}

func toWire(req hypersort.Request, res hypersort.Result) wireResult {
	if res.Err != nil {
		return wireResult{Err: res.Err.Error()}
	}
	out := wireResult{Stats: res.Stats}
	switch req.Op {
	case hypersort.OpKthSmallest, hypersort.OpMedian:
		v := int64(res.Value)
		out.Value = &v
	default:
		out.Keys = make([]int64, len(res.Keys))
		for i, k := range res.Keys {
			out.Keys[i] = int64(k)
		}
	}
	return out
}

// memMetrics is the allocation-health slice of runtime.MemStats exposed
// on /v1/metrics: enough to watch steady-state allocation rate and GC
// pressure without scraping full pprof profiles.
type memMetrics struct {
	HeapAllocBytes  uint64 `json:"heap_alloc_bytes"`
	TotalAllocBytes uint64 `json:"total_alloc_bytes"`
	Mallocs         uint64 `json:"mallocs"`
	Frees           uint64 `json:"frees"`
	LiveObjects     uint64 `json:"live_objects"`
	NumGC           uint32 `json:"num_gc"`
	PauseTotalNs    uint64 `json:"gc_pause_total_ns"`
}

func readMemMetrics() memMetrics {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return memMetrics{
		HeapAllocBytes:  ms.HeapAlloc,
		TotalAllocBytes: ms.TotalAlloc,
		Mallocs:         ms.Mallocs,
		Frees:           ms.Frees,
		LiveObjects:     ms.Mallocs - ms.Frees,
		NumGC:           ms.NumGC,
		PauseTotalNs:    ms.PauseTotalNs,
	}
}

func readJSON(w http.ResponseWriter, r *http.Request, dst any) bool {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return false
	}
	if err := json.NewDecoder(r.Body).Decode(dst); err != nil {
		http.Error(w, "bad JSON: "+err.Error(), http.StatusBadRequest)
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// runDemo measures the engine's amortization win on synthetic traffic:
// R requests round-robined over a handful of faulty configurations,
// served fresh (New per call: plan search + machine build every time)
// versus through the warm engine (SortBatch over cached plans and
// pooled machines).
func runDemo(eng *hypersort.Engine, requests, m int, seed uint64) {
	configs := []hypersort.Config{
		{Dim: 6, Faults: []hypersort.NodeID{3, 17, 40}},
		{Dim: 7, Faults: []hypersort.NodeID{5, 29, 77, 101}},
		{Dim: 8, Faults: []hypersort.NodeID{1, 64, 130, 200, 255, 17, 90}},
		{Dim: 6, Faults: []hypersort.NodeID{0, 21, 42, 63}, Model: hypersort.Total},
	}
	rng := xrand.New(seed)
	reqs := make([]hypersort.Request, requests)
	for i := range reqs {
		reqs[i] = hypersort.Request{
			Config: configs[i%len(configs)],
			Op:     hypersort.OpSort,
			Keys:   workload.MustGenerate(workload.Uniform, m, rng),
		}
	}
	fmt.Printf("demo: %d requests x %d keys over %d configurations\n", requests, m, len(configs))

	start := time.Now()
	for i, r := range reqs {
		s, err := hypersort.New(r.Config)
		if err != nil {
			fatal(err)
		}
		if _, _, err := s.Sort(r.Keys); err != nil {
			fatal(fmt.Errorf("request %d: %w", i, err))
		}
	}
	fresh := time.Since(start)
	fmt.Printf("fresh per-call (plan search + machine build every request): %v  (%.1f req/s)\n",
		fresh.Round(time.Millisecond), float64(requests)/fresh.Seconds())

	var before runtime.MemStats
	runtime.ReadMemStats(&before)
	start = time.Now()
	results := eng.SortBatch(reqs)
	warm := time.Since(start)
	var after runtime.MemStats
	runtime.ReadMemStats(&after)
	for i, res := range results {
		if res.Err != nil {
			fatal(fmt.Errorf("request %d: %w", i, res.Err))
		}
	}
	fmt.Printf("engine batch   (cached plans, pooled machines):             %v  (%.1f req/s)\n",
		warm.Round(time.Millisecond), float64(requests)/warm.Seconds())
	fmt.Printf("warm-path allocations: %.0f allocs/request (%.1f KiB/request)\n",
		float64(after.Mallocs-before.Mallocs)/float64(requests),
		float64(after.TotalAlloc-before.TotalAlloc)/float64(requests)/1024)
	fmt.Printf("speedup: %.2fx\n", fresh.Seconds()/warm.Seconds())
	mtr := eng.Metrics()
	fmt.Printf("engine metrics: %d requests, %d plan searches (%d cache hits), %d machines built + %d cloned\n",
		mtr.Requests, mtr.PlanMisses, mtr.PlanHits, mtr.MachinesBuilt, mtr.MachinesCloned)
	agg := hypersort.SumStats(results)
	fmt.Printf("simulated totals: critical-path makespan=%d comparisons=%d key-hops=%d\n",
		agg.Makespan, agg.Comparisons, agg.KeyHops)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "serve:", err)
	os.Exit(1)
}
