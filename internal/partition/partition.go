// Package partition implements the paper's §2.2 partition algorithm and
// §3 heuristics: given a hypercube Q_n with r <= n-1 known faulty
// processors, find every minimum-length cutting-dimension sequence that
// splits Q_n into the single-fault subcube structure F_n^m (at most one
// fault per subcube), choose the sequence minimizing the reindexing
// extra-communication bound (formula (1)), and pick one dangling
// processor per fault-free subcube so every subcube has exactly one dead
// node and the workload stays balanced.
package partition

import (
	"fmt"
	"sort"

	"hypersort/internal/cube"
)

// CutSet is the paper's Ψ together with its mincut value m: every
// minimum-length cutting-dimension sequence (each sorted ascending, as
// enumerated by the cutting-dimension tree T_n).
type CutSet struct {
	Mincut    int
	Sequences []cube.CutSequence
	// NodesVisited counts cutting-dimension tree nodes expanded by the
	// search (diagnostic; bounded by 2^n - 1).
	NodesVisited int
}

// FindCuttingSet runs the depth-first search over the cutting-dimension
// tree T_n with branch-and-bound on the current mincut, using the
// checking tree's incremental fault grouping to test each candidate
// sequence in O(r) per tree node (the paper's O(rN) total).
//
// Zero or one fault needs no cut: the result is mincut 0 with the single
// empty sequence. With more faults, sequences up to length n-1 are
// explored (each subcube must keep at least one live processor); if even
// that cannot separate the faults — possible only when two faults share
// an address, which NodeSet precludes — an error is returned.
func FindCuttingSet(h cube.Hypercube, faults cube.NodeSet) (CutSet, error) {
	for f := range faults {
		if !h.Contains(f) {
			return CutSet{}, fmt.Errorf("partition: fault %d outside Q_%d", f, h.Dim())
		}
	}
	if len(faults) <= 1 {
		return CutSet{Mincut: 0, Sequences: []cube.CutSequence{{}}}, nil
	}
	n := h.Dim()
	s := &search{
		n:       n,
		maxCut:  n - 1, // each subcube keeps >= 1 live processor
		mincut:  n,     // paper's Step 1 initial value
		current: make(cube.CutSequence, 0, n),
	}
	root := []group{faults.Sorted()}
	s.dfs(root, 0)
	if len(s.found) == 0 {
		return CutSet{}, fmt.Errorf("partition: no single-fault structure with at most %d cuts for %d faults", s.maxCut, len(faults))
	}
	return CutSet{Mincut: s.mincut, Sequences: s.found, NodesVisited: s.visited}, nil
}

// group is one node of the checking tree: the faults that share all
// coordinates along the dimensions cut so far.
type group []cube.NodeID

// search carries the DFS state over the cutting-dimension tree.
type search struct {
	n       int
	maxCut  int
	mincut  int
	current cube.CutSequence
	found   []cube.CutSequence
	visited int
}

// dfs extends the current sequence with dimensions >= start (T_n
// enumerates ascending sequences, one per dimension subset).
func (s *search) dfs(groups []group, start int) {
	depth := len(s.current)
	if depth >= s.mincut {
		return // Step 3's cutoff: longer sequences can never tie the best
	}
	for d := start; d < s.n; d++ {
		s.visited++
		s.current = append(s.current, d)
		next, feasible := splitGroups(groups, d)
		if feasible {
			s.record()
		} else if len(s.current) < s.maxCut {
			s.dfs(next, d+1)
		}
		s.current = s.current[:depth]
	}
}

// record applies the paper's update rule: a strictly shorter feasible
// sequence resets Ψ; an equal-length one joins it.
func (s *search) record() {
	k := len(s.current)
	if k < s.mincut {
		s.mincut = k
		s.found = s.found[:0]
	}
	s.found = append(s.found, s.current.Clone())
}

// splitGroups advances the checking tree one level: every group is split
// by bit d into the children with u_d = 0 and u_d = 1. feasible reports
// whether all resulting groups hold at most one fault.
func splitGroups(groups []group, d int) (next []group, feasible bool) {
	feasible = true
	next = make([]group, 0, 2*len(groups))
	for _, g := range groups {
		if len(g) == 1 {
			next = append(next, g)
			continue
		}
		var zero, one group
		for _, f := range g {
			if cube.Bit(f, d) == 0 {
				zero = append(zero, f)
			} else {
				one = append(one, f)
			}
		}
		if len(zero) > 0 {
			next = append(next, zero)
			if len(zero) > 1 {
				feasible = false
			}
		}
		if len(one) > 0 {
			next = append(next, one)
			if len(one) > 1 {
				feasible = false
			}
		}
	}
	return next, feasible
}

// ExtraCommCost evaluates the paper's formula (1) bound for an ordered
// cutting sequence D: for each subcube dimension i, take the maximum
// Hamming distance between the local addresses of faults in subcubes
// adjacent along i, and sum over i. The distance is exactly the extra
// hops a reindexed compare-exchange pair pays in the cross-subcube stage.
func ExtraCommCost(h cube.Hypercube, faults cube.NodeSet, d cube.CutSequence) (int, error) {
	sp, err := cube.NewSplit(h, d)
	if err != nil {
		return 0, err
	}
	if !sp.IsSingleFault(faults) {
		return 0, fmt.Errorf("partition: %v does not yield a single-fault structure", d)
	}
	// faultW[v] is the local address of subcube v's fault, or -1.
	faultW := make([]int64, sp.NumSubcubes())
	for i := range faultW {
		faultW[i] = -1
	}
	for f := range faults {
		faultW[sp.V(f)] = int64(sp.W(f))
	}
	total := 0
	for i := 0; i < sp.M(); i++ {
		maxH := 0
		for v := 0; v < sp.NumSubcubes(); v++ {
			if cube.Bit(cube.NodeID(v), i) != 0 {
				continue // count each adjacent pair once
			}
			nb := int(sp.NeighborSubcube(cube.NodeID(v), i))
			if faultW[v] < 0 || faultW[nb] < 0 {
				continue // only fault-fault pairs enter the heuristic
			}
			if hd := cube.HammingDistance(cube.NodeID(faultW[v]), cube.NodeID(faultW[nb])); hd > maxH {
				maxH = hd
			}
		}
		total += maxH
	}
	return total, nil
}

// Select applies the min-max heuristic: among the sequences of Ψ it
// returns the one minimizing ExtraCommCost, breaking ties toward the
// first (lexicographically smallest, matching the paper's choice of D_1
// in Example 2). The chosen sequence's cost is returned alongside.
func Select(h cube.Hypercube, faults cube.NodeSet, set CutSet) (cube.CutSequence, int, error) {
	return SelectObjective(h, faults, set, ObjectiveHops)
}

// DanglingW applies the paper's balance heuristic: the dangling processor
// of every fault-free subcube takes the local (w-space) address that
// appears most frequently among the faults, breaking frequency ties
// toward the smallest address for determinism.
func DanglingW(sp *cube.Split, faults cube.NodeSet) cube.NodeID {
	counts := make(map[cube.NodeID]int, len(faults))
	for f := range faults {
		counts[sp.W(f)]++
	}
	var bestW cube.NodeID
	bestCount := -1
	ws := make([]cube.NodeID, 0, len(counts))
	for w := range counts {
		ws = append(ws, w)
	}
	sort.Slice(ws, func(i, j int) bool { return ws[i] < ws[j] })
	for _, w := range ws {
		if counts[w] > bestCount {
			bestW, bestCount = w, counts[w]
		}
	}
	return bestW
}
