package machine

import (
	"math/bits"
	"sync"

	"hypersort/internal/sortutil"
)

// keyPool recycles message payload slices by power-of-two size class.
// Send acquires a buffer here and copies the caller's keys into it; the
// receiver owns the buffer after Recv and may hand it back with
// Proc.Release once it is done reading. Steady state a kernel exchanging
// fixed-size chunks does O(1) payload allocations per run instead of one
// per message.
//
// The pool is shared by a machine and all its Clones (it holds no
// per-run state) so warm buffers survive across the engine's pooled
// machines; a mutex per size class makes it safe for concurrent use.
// Plain freelist stacks rather than sync.Pool: Put-ing a slice into a
// sync.Pool boxes the header into a fresh interface allocation on every
// call, which would put an allocation right back on the path the pool
// exists to clear.
type keyPool struct {
	// classes[c] holds buffers with capacity in [2^c, 2^(c+1)); get
	// allocates with capacity exactly 2^c, so any pooled buffer of class
	// c can serve any request that maps to class c.
	classes [maxSizeClass]freelist
}

// freelist is one size class: a bounded LIFO stack of idle buffers.
type freelist struct {
	mu   sync.Mutex
	bufs [][]sortutil.Key
}

// maxSizeClass bounds the size classes: payloads of 2^(maxSizeClass-1)
// keys or more are not pooled (no workload sends gigabyte messages; the
// bound only guards the array size).
const maxSizeClass = 40

// maxPerClass caps each class's idle stack; beyond it released buffers
// go to the garbage collector. At class 20 (8 MiB buffers) that bounds a
// class's idle memory at ~8 GiB only in a pathological workload — real
// runs keep a handful of buffers per class hot.
const maxPerClass = 1024

// sizeClass returns the smallest c with 1<<c >= n, for n >= 1.
func sizeClass(n int) int {
	return bits.Len(uint(n - 1))
}

// get returns a buffer of length n, recycled when a pooled buffer of
// n's size class is available. Contents are unspecified; the caller must
// overwrite all n elements.
func (kp *keyPool) get(n int) []sortutil.Key {
	if n == 0 {
		return nil
	}
	c := sizeClass(n)
	if c >= maxSizeClass {
		return make([]sortutil.Key, n)
	}
	fl := &kp.classes[c]
	fl.mu.Lock()
	if last := len(fl.bufs) - 1; last >= 0 {
		b := fl.bufs[last]
		fl.bufs[last] = nil
		fl.bufs = fl.bufs[:last]
		fl.mu.Unlock()
		return b[:n]
	}
	fl.mu.Unlock()
	return make([]sortutil.Key, n, 1<<c)
}

// put returns a buffer to its size class for reuse. The class is the
// floor log2 of the capacity, so a recycled buffer always has capacity
// >= the class's get size. Zero-capacity and oversized buffers are
// dropped for the garbage collector.
func (kp *keyPool) put(b []sortutil.Key) {
	c := cap(b)
	if c == 0 {
		return
	}
	cl := bits.Len(uint(c)) - 1
	if cl >= maxSizeClass {
		return
	}
	if poisonReleased {
		b = b[:c]
		for i := range b {
			b[i] = poisonKey
		}
	}
	fl := &kp.classes[cl]
	fl.mu.Lock()
	if len(fl.bufs) < maxPerClass {
		fl.bufs = append(fl.bufs, b[:0])
	}
	fl.mu.Unlock()
}

// poisonReleased, when set (by tests, before any runs start), makes put
// overwrite every released payload with poisonKey. A kernel that
// illegally keeps reading a buffer after Release then observes the
// sentinel deterministically instead of silently racing with the next
// Send — the aliasing tests run whole sorts with poisoning on and assert
// the output is untainted.
var poisonReleased bool

// poisonKey is an implausible key value: not Inf, not NegInf, not
// produced by any workload generator.
const poisonKey sortutil.Key = -0x5EED5EED5EED5EED

// SetReleasePoison toggles payload poisoning for tests. It must not be
// called while runs are in flight.
func SetReleasePoison(on bool) { poisonReleased = on }
