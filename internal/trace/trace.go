// Package trace collects and analyzes machine execution traces: who sent
// what to whom and when, per-processor busy/idle breakdowns, traffic
// matrices, and a textual timeline. It exists because a simulator's main
// advantage over real hardware is observability — every run can explain
// itself.
//
// Wire a Recorder into a machine:
//
//	rec := trace.NewRecorder()
//	m, _ := machine.New(machine.Config{Dim: 4, Trace: rec.Record})
//	... run ...
//	report := trace.Analyze(rec.Events())
package trace

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"text/tabwriter"

	"hypersort/internal/cube"
	"hypersort/internal/machine"
)

// Recorder is a concurrency-safe collector of machine trace events.
type Recorder struct {
	mu     sync.Mutex
	events []machine.TraceEvent
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// Record appends one event; pass it as machine.Config.Trace.
func (r *Recorder) Record(ev machine.TraceEvent) {
	r.mu.Lock()
	r.events = append(r.events, ev)
	r.mu.Unlock()
}

// Events returns a snapshot of the collected events, ordered by event
// time (ties broken by node then kind for determinism).
func (r *Recorder) Events() []machine.TraceEvent {
	r.mu.Lock()
	out := append([]machine.TraceEvent(nil), r.events...)
	r.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Time != out[j].Time {
			return out[i].Time < out[j].Time
		}
		if out[i].Node != out[j].Node {
			return out[i].Node < out[j].Node
		}
		return out[i].Kind < out[j].Kind
	})
	return out
}

// Reset clears the recorder for reuse between runs.
func (r *Recorder) Reset() {
	r.mu.Lock()
	r.events = r.events[:0]
	r.mu.Unlock()
}

// Len returns the number of collected events.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.events)
}

// NodeProfile is one processor's activity summary.
type NodeProfile struct {
	Node        cube.NodeID
	Sends       int
	Recvs       int
	KeysOut     int64
	KeysIn      int64
	Comparisons int64
	// ComputeTime is the virtual time spent comparing (comparisons times
	// the compare cost is not recoverable from events alone, so this is
	// measured as the clock advance attributed to compute events).
	LastTime machine.Time
}

// Report is the digest of one run's trace.
type Report struct {
	Events   int
	Makespan machine.Time
	Profiles []NodeProfile // by ascending node address
	// Traffic[a][b] counts messages a -> b.
	Traffic map[cube.NodeID]map[cube.NodeID]int
	// HopHistogram counts sends by routed hop count; extra-hop traffic
	// from reindexing shows up here as mass above 1.
	HopHistogram map[int]int
}

// Analyze digests an event stream.
func Analyze(events []machine.TraceEvent) *Report {
	rep := &Report{
		Traffic:      make(map[cube.NodeID]map[cube.NodeID]int),
		HopHistogram: make(map[int]int),
	}
	profiles := make(map[cube.NodeID]*NodeProfile)
	get := func(id cube.NodeID) *NodeProfile {
		p, ok := profiles[id]
		if !ok {
			p = &NodeProfile{Node: id}
			profiles[id] = p
		}
		return p
	}
	for _, ev := range events {
		rep.Events++
		p := get(ev.Node)
		if ev.Time > p.LastTime {
			p.LastTime = ev.Time
		}
		if ev.Time > rep.Makespan {
			rep.Makespan = ev.Time
		}
		switch ev.Kind {
		case machine.TraceSend:
			p.Sends++
			p.KeysOut += int64(ev.Keys)
			row := rep.Traffic[ev.Node]
			if row == nil {
				row = make(map[cube.NodeID]int)
				rep.Traffic[ev.Node] = row
			}
			row[ev.Peer]++
			rep.HopHistogram[ev.Hops]++
		case machine.TraceRecv:
			p.Recvs++
			p.KeysIn += int64(ev.Keys)
		case machine.TraceCompute:
			p.Comparisons += int64(ev.Keys)
		}
	}
	for _, p := range profiles {
		rep.Profiles = append(rep.Profiles, *p)
	}
	sort.Slice(rep.Profiles, func(i, j int) bool { return rep.Profiles[i].Node < rep.Profiles[j].Node })
	return rep
}

// Summary renders the report as an aligned table plus the hop histogram.
func (r *Report) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "trace: %d events, makespan %d\n", r.Events, r.Makespan)
	w := tabwriter.NewWriter(&b, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "node\tsends\trecvs\tkeys out\tkeys in\tcomparisons\tlast event")
	for _, p := range r.Profiles {
		fmt.Fprintf(w, "%d\t%d\t%d\t%d\t%d\t%d\t%d\n",
			p.Node, p.Sends, p.Recvs, p.KeysOut, p.KeysIn, p.Comparisons, p.LastTime)
	}
	w.Flush()
	hops := make([]int, 0, len(r.HopHistogram))
	for h := range r.HopHistogram {
		hops = append(hops, h)
	}
	sort.Ints(hops)
	b.WriteString("messages by hop count:")
	for _, h := range hops {
		fmt.Fprintf(&b, " %d-hop: %d", h, r.HopHistogram[h])
	}
	b.WriteString("\n")
	return b.String()
}

// ExtraHopShare returns the fraction of sent messages that travelled
// more than one hop — the reindexing overhead the paper's formula (1)
// heuristic tries to keep down. Returns 0 for an empty trace.
func (r *Report) ExtraHopShare() float64 {
	total, extra := 0, 0
	for h, c := range r.HopHistogram {
		total += c
		if h > 1 {
			extra += c
		}
	}
	if total == 0 {
		return 0
	}
	return float64(extra) / float64(total)
}

// Timeline renders the first limit events in time order, one per line —
// a readable flight recorder for debugging kernels.
func Timeline(events []machine.TraceEvent, limit int) string {
	var b strings.Builder
	for i, ev := range events {
		if i >= limit {
			fmt.Fprintf(&b, "... (%d more events)\n", len(events)-limit)
			break
		}
		switch ev.Kind {
		case machine.TraceSend:
			fmt.Fprintf(&b, "t=%-8d node %-3d send %3d keys -> %d (tag %d, %d hops)\n",
				ev.Time, ev.Node, ev.Keys, ev.Peer, ev.Tag, ev.Hops)
		case machine.TraceRecv:
			fmt.Fprintf(&b, "t=%-8d node %-3d recv %3d keys <- %d (tag %d)\n",
				ev.Time, ev.Node, ev.Keys, ev.Peer, ev.Tag)
		case machine.TraceCompute:
			fmt.Fprintf(&b, "t=%-8d node %-3d compute %d comparisons\n",
				ev.Time, ev.Node, ev.Keys)
		}
	}
	return b.String()
}
