module hypersort

go 1.22
