package hypersort

import (
	"testing"

	"hypersort/internal/trace"
)

// BenchmarkEngineObsOverhead is the overhead guard for the
// observability layer: identical warm-engine traffic with metrics only
// (the always-on default), with full every-event ring tracing, and with
// 1-in-16 sampled tracing. The sub-benchmark deltas are the layer's
// measured cost; OBSERVABILITY.md's "near-free" claim is this benchmark.
// (BenchmarkEngineBatch, gated in CI against the committed baseline,
// runs metrics-only — the always-on production configuration.)
func BenchmarkEngineObsOverhead(b *testing.B) {
	configs := []Config{
		{Dim: 4, Faults: []NodeID{0, 1, 2}},
		{Dim: 5, Faults: []NodeID{3, 17}},
	}
	const perBatch = 16
	reqs := make([]Request, perBatch)
	for i := range reqs {
		reqs[i] = Request{Config: configs[i%len(configs)], Op: OpSort, Keys: genKeys(512, uint64(i))}
	}
	run := func(b *testing.B, cfg EngineConfig) {
		b.Helper()
		b.ReportAllocs()
		eng := NewEngine(cfg)
		defer eng.Close()
		eng.SortBatch(reqs) // warm the plan cache and pools
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, res := range eng.SortBatch(reqs) {
				if res.Err != nil {
					b.Fatal(res.Err)
				}
			}
		}
	}
	b.Run("metrics-only", func(b *testing.B) {
		run(b, EngineConfig{})
	})
	b.Run("traced-full", func(b *testing.B) {
		ring := trace.NewRing(1<<16, 1)
		run(b, EngineConfig{Trace: ring.Record})
	})
	b.Run("traced-sampled", func(b *testing.B) {
		ring := trace.NewRing(1<<16, 16)
		run(b, EngineConfig{Trace: ring.Record})
	})
}
