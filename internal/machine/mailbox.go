package machine

import (
	"runtime"
	"sync"
	"sync/atomic"

	"hypersort/internal/cube"
	"hypersort/internal/sortutil"
)

// message is one point-to-point transfer. arrival is the virtual time the
// last byte reaches the destination under the cost model.
type message struct {
	src     cube.NodeID
	tag     Tag
	arrival Time
	keys    []sortutil.Key
}

// Ring geometry. Every kernel in the repo keeps O(1) messages in flight
// per peer (an Exchange has one, the half-exchange protocol two, a
// collective one per child), so four slots cover the steady state; a full
// ring spills to the general queue without losing ordering.
const (
	ringSlots = 4
	ringMask  = ringSlots - 1
)

// spscMaxDim bounds the per-source ring index: a node of a dimension-n
// machine carries a 2^n-entry pointer array (O(4^n) per machine), fine
// through Q_10 and absurd beyond. Larger machines use the general path
// only — at that scale the simulation cost dwarfs mailbox constant
// factors anyway.
const spscMaxDim = 10

// generalPathOnly and useFlatBarrier are substrate knobs for the
// cross-substrate determinism harness: they force the mutex general path
// and the legacy flat barrier so tests can pin that the lock-free fast
// paths produce bit-identical Results. Toggle only via the Set* helpers,
// never while a machine is mid-Run.
var generalPathOnly bool

// SetGeneralPathOnly forces every message through the mutex-guarded
// general queue, bypassing the SPSC link rings. Test-only: machines built
// or run while the knob is flipped must not be mid-Run, and production
// code must never call this.
func SetGeneralPathOnly(on bool) { generalPathOnly = on }

// ring is one (src, dst) link's single-producer single-consumer queue.
// The hypercube gives the SPSC invariant structurally: a message's source
// field is always the sending kernel's own address, and each address runs
// exactly one kernel goroutine per machine, so the (src, dst) link has
// one writer by construction. The consumer is dst's kernel goroutine.
//
// head is owned by the consumer and tail by the producer; each publishes
// its cursor atomically so the other side observes a consistent prefix
// (tail.Store is the release for the slot write, head.Store the release
// for the slot clear).
type ring struct {
	head atomic.Uint32 // next slot the consumer pops
	tail atomic.Uint32 // next slot the producer fills
	// spilled is producer-owned: once the ring overflows mid-run the
	// producer routes every later message on this link to the general
	// queue, so the per-(src, tag) FIFO order receivers rely on survives
	// (ring entries always predate general-queue entries from the same
	// source). reset clears it between runs.
	spilled bool
	slots   [ringSlots]message
}

// mailbox is an MPI-style receive queue with (source, tag) matching.
// Sends never block; receives block until a matching message is present
// or the run is aborted.
//
// Layout: the fast path is one bounded SPSC ring per incoming link,
// indexed by source address, paired with a single notification channel
// the consumer parks on. Messages popped past while scanning for a tag
// (receivers may take tags out of order) land in the consumer-owned
// stash. The general path — a mutex-guarded queue — catches ring
// overflow and machines too large for per-source ring arrays. Logical
// semantics are identical to an unbounded queue: kernels exchange O(1)
// outstanding messages per peer, and an algorithmic bug shows up as an
// observable stuck queue rather than a silent deadlock.
type mailbox struct {
	// rings[src] is the SPSC fast path for the src→here link; entries are
	// allocated lazily by the producer on first use (the producer is the
	// sole writer of its own index; the atomic store publishes the ring
	// to the consumer). nil slice on machines above spscMaxDim.
	rings []atomic.Pointer[ring]
	// slab backs lazily created rings: one allocation sized to the
	// typical in-degree (a node hears from about Dim distinct sources
	// over a sort) instead of one per link, made on the first ring
	// request so idle nodes allocate nothing. Guarded by slabMu — link
	// creation happens once per link per machine lifetime, so the lock
	// is cold. ringList records every ring handed out so reset touches
	// only links that carried traffic.
	slabMu   sync.Mutex
	slabSize int
	slab     []ring
	ringList []*ring
	// stash is consumer-owned: messages popped off a ring front while
	// scanning for a different tag. Always older than anything still in
	// a ring, so matching it first preserves per-(src, tag) FIFO.
	stash []message
	// notify is the consumer's wakeup latch. Capacity 1: producers do a
	// non-blocking send after an enqueue when the consumer may be parked
	// (see parked); a stale token only costs one spurious re-check.
	notify chan struct{}
	// parked is the Dekker flag that lets producers skip the notify
	// channel entirely on the hot path. The consumer stores 1, then
	// re-checks the queues before blocking; a producer publishes its
	// message (atomic tail/slow store), then loads parked. Both sides use
	// sequentially consistent atomics, so either the producer observes
	// parked=1 and posts a wakeup, or the consumer's re-check observes
	// the message — a missed wakeup would need both loads to precede both
	// stores, which no interleaving of the total order allows.
	parked  atomic.Int32
	aborted atomic.Bool

	// general path: spilled links, oversized machines, and the
	// generalPathOnly harness knob. slow mirrors len(q) so the consumer
	// can skip the lock when the queue is empty.
	mu   sync.Mutex
	q    []message
	slow atomic.Int32
}

// newMailbox builds a mailbox for a machine of the given node count.
func newMailbox(size int) *mailbox {
	mb := &mailbox{notify: make(chan struct{}, 1)}
	if size <= 1<<spscMaxDim {
		mb.rings = make([]atomic.Pointer[ring], size)
		mb.slabSize = 2
		for s := size; s > 1; s >>= 1 {
			mb.slabSize++ // dim + 2: the typical sort-kernel in-degree
		}
	}
	return mb
}

// producerRing returns the caller's SPSC ring into this mailbox, creating
// it on first use, or nil when the link must use the general path. Called
// only by the producing kernel goroutine for its own source address.
func (mb *mailbox) producerRing(src cube.NodeID) *ring {
	if mb.rings == nil || generalPathOnly {
		return nil
	}
	if r := mb.rings[src].Load(); r != nil {
		if r.spilled {
			return nil
		}
		return r
	}
	mb.slabMu.Lock()
	if mb.slab == nil && len(mb.ringList) == 0 {
		mb.slab = make([]ring, mb.slabSize)
	}
	var r *ring
	if len(mb.slab) > 0 {
		r = &mb.slab[0]
		mb.slab = mb.slab[1:]
	} else {
		r = new(ring)
	}
	mb.ringList = append(mb.ringList, r)
	mb.slabMu.Unlock()
	mb.rings[src].Store(r)
	return r
}

// put enqueues a message and wakes the receiver. Called by the kernel
// goroutine whose address is m.src (the SPSC invariant).
func (mb *mailbox) put(m message) {
	if r := mb.producerRing(m.src); r != nil {
		if t := r.tail.Load(); t-r.head.Load() < ringSlots {
			r.slots[t&ringMask] = m
			r.tail.Store(t + 1)
			if mb.parked.Load() != 0 {
				mb.wake()
			}
			return
		}
		r.spilled = true
	}
	mb.mu.Lock()
	mb.q = append(mb.q, m)
	mb.mu.Unlock()
	mb.slow.Add(1)
	if mb.parked.Load() != 0 {
		mb.wake()
	}
}

// wake posts the consumer's wakeup token (non-blocking: a pending token
// already guarantees the consumer will re-check).
func (mb *mailbox) wake() {
	select {
	case mb.notify <- struct{}{}:
	default:
	}
}

// abort wakes a blocked receiver; its take call returns ok=false. The
// wakeup is posted unconditionally — aborts are rare and must never race
// the parked-flag elision.
func (mb *mailbox) abort() {
	mb.aborted.Store(true)
	mb.wake()
}

// take removes and returns the first message matching (src, tag),
// blocking until one arrives. waited reports whether the caller had to
// block. ok is false if the run was aborted while waiting. Called only by
// the owning node's kernel goroutine.
func (mb *mailbox) take(src cube.NodeID, tag Tag) (m message, waited, ok bool) {
	spun := false
	for {
		if mb.aborted.Load() {
			return message{}, waited, false
		}
		if m, ok := mb.match(src, tag); ok {
			return m, waited, true
		}
		waited = true
		// Adaptive wait: yield once before parking. In the dominant
		// exchange ping-pong the partner is already runnable and sends
		// within one scheduling round, so the re-check after Gosched
		// usually hits — skipping the park/wake round trip (sudog queue,
		// channel lock, goready) entirely. Only genuinely long waits
		// (a slow peer several steps behind) fall through to the park.
		if !spun {
			spun = true
			runtime.Gosched()
			continue
		}
		// Announce intent to park, then re-check: see parked's comment
		// for why this cannot miss a message.
		mb.parked.Store(1)
		if m, ok := mb.match(src, tag); ok {
			mb.parked.Store(0)
			return m, waited, true
		}
		if mb.aborted.Load() {
			mb.parked.Store(0)
			return message{}, waited, false
		}
		<-mb.notify
		mb.parked.Store(0)
	}
}

// match performs one non-blocking matching pass in oldest-first order per
// source: stash (earlier pops), then the source's ring, then the general
// queue (spilled messages are always younger than that source's ring
// residue, which match drains to the stash before looking there).
func (mb *mailbox) match(src cube.NodeID, tag Tag) (message, bool) {
	for i := range mb.stash {
		if mb.stash[i].src == src && mb.stash[i].tag == tag {
			m := mb.stash[i]
			mb.stash = append(mb.stash[:i], mb.stash[i+1:]...)
			return m, true
		}
	}
	if mb.rings != nil {
		if r := mb.rings[src].Load(); r != nil {
			h, t := r.head.Load(), r.tail.Load()
			for ; h != t; h++ {
				m := r.slots[h&ringMask]
				r.slots[h&ringMask] = message{}
				r.head.Store(h + 1)
				if m.tag == tag {
					return m, true
				}
				// Out-of-order receive: park the older message in the
				// stash and keep scanning.
				mb.stash = append(mb.stash, m)
			}
		}
	}
	if mb.slow.Load() > 0 {
		mb.mu.Lock()
		for i := range mb.q {
			if mb.q[i].src == src && mb.q[i].tag == tag {
				m := mb.q[i]
				mb.q = append(mb.q[:i], mb.q[i+1:]...)
				mb.mu.Unlock()
				mb.slow.Add(-1)
				return m, true
			}
		}
		mb.mu.Unlock()
	}
	return message{}, false
}

// reset clears every queue and the abort flag between runs, returning any
// undelivered messages so the machine can recycle their payloads. Called
// with no kernel goroutines live.
func (mb *mailbox) reset() []message {
	var left []message
	if len(mb.stash) > 0 {
		left = append(left, mb.stash...)
		clear(mb.stash)
		mb.stash = mb.stash[:0]
	}
	for _, r := range mb.ringList {
		h, t := r.head.Load(), r.tail.Load()
		for ; h != t; h++ {
			left = append(left, r.slots[h&ringMask])
			r.slots[h&ringMask] = message{}
		}
		r.head.Store(h)
		r.spilled = false
	}
	if len(mb.q) > 0 {
		left = append(left, mb.q...)
		clear(mb.q)
		mb.q = mb.q[:0]
		mb.slow.Store(0)
	}
	mb.aborted.Store(false)
	mb.parked.Store(0)
	select {
	case <-mb.notify: // drop a stale wakeup token
	default:
	}
	return left
}

// pending returns the number of queued messages (diagnostics and the
// sampled queue-depth metric). Safe to call from the consumer while
// producers are active: ringList is read under slabMu because
// producerRing appends to it concurrently on first use of a link.
func (mb *mailbox) pending() int {
	n := len(mb.stash)
	mb.slabMu.Lock()
	rings := mb.ringList
	mb.slabMu.Unlock()
	for _, r := range rings {
		n += int(r.tail.Load() - r.head.Load())
	}
	mb.mu.Lock()
	n += len(mb.q)
	mb.mu.Unlock()
	return n
}
