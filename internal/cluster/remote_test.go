package cluster

// Tests for the multi-process shape: RemoteShard backends over live
// transport servers, with the headline acceptance check — a shard dying
// mid-call loses ZERO non-shed requests, because the router reroutes
// the failed call to the dead shard's ring successor.

import (
	"net"
	"sort"
	"sync"
	"testing"
	"time"

	"context"

	"hypersort/internal/engine"
	"hypersort/internal/machine"
	"hypersort/internal/sortutil"
	"hypersort/internal/transport"
)

// sortingBackend is a transport.Backend that sorts in-process; an
// optional gate blocks Do until the channel closes (or the request
// context dies), letting a test hold a request in flight on a chosen
// shard while it kills that shard.
type sortingBackend struct {
	gate chan struct{}
}

func (b *sortingBackend) DoContext(ctx context.Context, req engine.Request) engine.Result {
	if b.gate != nil {
		select {
		case <-b.gate:
		case <-ctx.Done():
			return engine.Result{Err: ctx.Err()}
		}
	}
	keys := append([]sortutil.Key(nil), req.Keys...)
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return engine.Result{Keys: keys}
}

func (b *sortingBackend) InjectFault(engine.Config, ...machine.Injection) error { return nil }
func (b *sortingBackend) DisarmFaults(engine.Config) error                      { return nil }
func (b *sortingBackend) Metrics() engine.Metrics                               { return engine.Metrics{Requests: 1} }

// startShardProcess stands up one transport server (our in-test stand-in
// for a shard process) and the RemoteShard backend dialing it.
func startShardProcess(t *testing.T, be transport.Backend) (*transport.Server, *RemoteShard) {
	t.Helper()
	srv := transport.NewServer(be, transport.ServerOptions{DrainTimeout: 100 * time.Millisecond})
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(lis)
	cl := transport.NewClient(lis.Addr().String(), transport.ClientOptions{
		DialTimeout:     time.Second,
		CallTimeout:     5 * time.Second,
		ReprobeInterval: 10 * time.Millisecond,
	})
	rs := NewRemoteShard(cl)
	t.Cleanup(func() {
		rs.Close()
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})
	return srv, rs
}

// hardKill force-closes a server — cancelled context, so the drain loop
// exits immediately and every connection is cut mid-flight, the closest
// an in-process test gets to SIGKILL (the CI smoke leg does the real one).
func hardKill(srv *transport.Server) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	srv.Shutdown(ctx)
}

func TestRemoteClusterSortsAcrossShardProcesses(t *testing.T) {
	const shards = 3
	backends := make([]Backend, shards)
	for i := range backends {
		_, rs := startShardProcess(t, &sortingBackend{})
		backends[i] = rs
	}
	c := NewWithBackends(Options{Replicas: 1}, backends)
	defer c.Close()

	if got := c.HealthyShards(); got != shards {
		t.Fatalf("HealthyShards = %d, want %d", got, shards)
	}
	for i := 0; i < 40; i++ {
		res := c.Do(engine.Request{
			Config: engine.Config{Dim: 4 + i%3},
			Op:     engine.OpSort,
			Keys:   []sortutil.Key{3, sortutil.Key(i), -1},
		})
		if res.Err != nil {
			t.Fatalf("request %d: %v", i, res.Err)
		}
		if !sort.SliceIsSorted(res.Keys, func(a, b int) bool { return res.Keys[a] < res.Keys[b] }) {
			t.Fatalf("request %d: unsorted %v", i, res.Keys)
		}
	}
	if m := c.Metrics(); m.Engine.Requests != shards {
		// Each sortingBackend reports Requests=1; the cluster sums them —
		// proving Metrics crossed the wire from every shard process.
		t.Fatalf("summed remote metrics = %d, want %d", m.Engine.Requests, shards)
	}
}

// TestRemoteClusterReroutesOnShardDeath holds a request in flight on its
// home shard, hard-kills that shard, and requires the router to finish
// the request on the ring successor: zero failed non-shed requests, and
// the reroute counter records the recovery.
func TestRemoteClusterReroutesOnShardDeath(t *testing.T) {
	const shards = 3
	gate := make(chan struct{})
	gated := &sortingBackend{gate: gate}
	defer close(gate)

	servers := make([]*transport.Server, shards)
	backends := make([]Backend, shards)
	// Build twice: the first pass learns which shard a probe config homes
	// on, the second gates exactly that shard's backend. Ring placement
	// depends only on shard COUNT, so the assignment carries over.
	probe := engine.Config{Dim: 6}
	scout := NewWithBackends(Options{Replicas: 1}, []Backend{
		&churnBackend{}, &churnBackend{}, &churnBackend{},
	})
	victim := scout.Candidates(probe)[0]
	scout.Close()

	for i := range backends {
		be := &sortingBackend{}
		if i == victim {
			be = gated
		}
		servers[i], backends[i] = startShardProcess(t, be)
	}
	c := NewWithBackends(Options{Replicas: 1}, backends)
	defer c.Close()

	resC := make(chan engine.Result, 1)
	go func() {
		resC <- c.Do(engine.Request{Config: probe, Op: engine.OpSort, Keys: []sortutil.Key{7, -2, 5}})
	}()
	deadline := time.Now().Add(2 * time.Second)
	for servers[victim].Inflight() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("request never reached the victim shard")
		}
		time.Sleep(time.Millisecond)
	}

	hardKill(servers[victim])

	res := <-resC
	if res.Err != nil {
		t.Fatalf("request lost to shard death: %v", res.Err)
	}
	want := []sortutil.Key{-2, 5, 7}
	for i, k := range want {
		if res.Keys[i] != k {
			t.Fatalf("rerouted result = %v, want %v", res.Keys, want)
		}
	}
	m := c.Metrics()
	if m.Reroutes < 1 {
		t.Fatalf("Reroutes = %d, want >= 1", m.Reroutes)
	}

	// The dead shard must now be marked down, and a follow-up storm over
	// many configurations — a third of which home on the victim — must
	// lose nothing: every request sorts on a survivor.
	healthyDeadline := time.Now().Add(time.Second)
	for backends[victim].Healthy() {
		if time.Now().After(healthyDeadline) {
			t.Fatal("victim shard never marked unhealthy")
		}
		time.Sleep(time.Millisecond)
	}
	var wg sync.WaitGroup
	errs := make([]error, 60)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res := c.Do(engine.Request{
				Config: engine.Config{Dim: 4 + i%5},
				Op:     engine.OpSort,
				Keys:   []sortutil.Key{sortutil.Key(i), 0, -9},
			})
			errs[i] = res.Err
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("post-kill request %d failed (want success or shed, got neither): %v", i, err)
		}
	}
	if c.HealthyShards() != shards-1 {
		t.Fatalf("HealthyShards = %d, want %d", c.HealthyShards(), shards-1)
	}
}
