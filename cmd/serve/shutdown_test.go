package main

// Regression tests for the graceful-shutdown ordering and the
// proxy-mode Retry-After hint.

import (
	"context"
	"io"
	"net"
	"net/http"
	"os"
	"sync/atomic"
	"testing"
	"time"

	"hypersort"
	"hypersort/internal/obs"
)

// hintingBackend satisfies the handler backend interface plus
// queueWaitHinter — the shape of the multi-process proxy, whose shards
// report queue wait over the wire while the local histogram stays empty.
type hintingBackend struct{ hint int64 }

func (b *hintingBackend) SortBatchContext(ctx context.Context, reqs []hypersort.Request) []hypersort.Result {
	return make([]hypersort.Result, len(reqs))
}
func (b *hintingBackend) InjectFault(hypersort.Config, ...hypersort.Injection) error { return nil }
func (b *hintingBackend) DisarmFaults(hypersort.Config) error                        { return nil }
func (b *hintingBackend) QueueWaitHint() int64                                       { return b.hint }

// TestRetryAfterConsultsProxyHint pins the proxy-mode half of the
// Retry-After contract: when the backend reports a remote queue wait
// worse than the local histogram's p50, the hint follows the remote
// figure (ceiled to whole seconds); when the remote figure is smaller,
// the local histogram still wins.
func TestRetryAfterConsultsProxyHint(t *testing.T) {
	empty := &obs.Histogram{}
	if got := retryAfterSeconds(empty, &hintingBackend{hint: int64(2500 * time.Millisecond)}); got != 3 {
		t.Fatalf("remote hint 2.5s over empty histogram: Retry-After = %d, want 3", got)
	}
	if got := retryAfterSeconds(empty, &hintingBackend{hint: 0}); got != 1 {
		t.Fatalf("zero hint must keep the 1s floor, got %d", got)
	}
	local := &obs.Histogram{}
	local.Observe(int64(1 << 36)) // ~69s local p50, capped at 30
	if got := retryAfterSeconds(local, &hintingBackend{hint: int64(time.Second)}); got != 30 {
		t.Fatalf("worse local histogram must win over a mild hint, got %d", got)
	}
}

// TestServeUntilDrainsBeforeBackendClose pins the shutdown ordering
// serveUntil exists to guarantee: on signal, in-flight HTTP requests
// run to completion BEFORE the backend closes. The old shape —
// closeBackend right after ListenAndServe returned — closed the engine
// while handlers were still executing, because http.Server's Serve
// returns the moment Shutdown begins, not when it finishes.
func TestServeUntilDrainsBeforeBackendClose(t *testing.T) {
	var (
		inHandler   atomic.Bool
		handlerDone atomic.Bool
		closedEarly atomic.Bool
		closed      atomic.Bool
	)
	release := make(chan struct{})
	srv := &http.Server{Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		inHandler.Store(true)
		<-release
		handlerDone.Store(true)
		w.WriteHeader(http.StatusOK)
		io.WriteString(w, "drained")
	})}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	sig := make(chan os.Signal, 1)
	serveErr := make(chan error, 1)
	go func() {
		serveErr <- serveUntil(srv, lis, sig, 5*time.Second, func() {
			closed.Store(true)
			if !handlerDone.Load() {
				closedEarly.Store(true)
			}
		})
	}()

	// One request in flight, held open inside the handler.
	respC := make(chan *http.Response, 1)
	reqErr := make(chan error, 1)
	go func() {
		resp, err := http.Get("http://" + lis.Addr().String() + "/")
		if err != nil {
			reqErr <- err
			return
		}
		respC <- resp
	}()
	deadline := time.Now().Add(2 * time.Second)
	for !inHandler.Load() {
		if time.Now().After(deadline) {
			t.Fatal("request never reached the handler")
		}
		time.Sleep(time.Millisecond)
	}

	sig <- os.Interrupt

	// The server must now be draining: serveUntil still running, backend
	// still open, handler still blocked.
	time.Sleep(50 * time.Millisecond)
	if closed.Load() {
		t.Fatal("backend closed while a handler was still executing")
	}
	select {
	case err := <-serveErr:
		t.Fatalf("serveUntil returned mid-drain: %v", err)
	default:
	}

	close(release)
	if err := <-serveErr; err != nil {
		t.Fatalf("serveUntil: %v", err)
	}
	if !closed.Load() {
		t.Fatal("backend never closed")
	}
	if closedEarly.Load() {
		t.Fatal("backend closed before the in-flight handler finished")
	}
	select {
	case err := <-reqErr:
		t.Fatalf("in-flight request failed across shutdown: %v", err)
	case resp := <-respC:
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || string(body) != "drained" {
			t.Fatalf("in-flight response = %d %q, want 200 \"drained\"", resp.StatusCode, body)
		}
	}
}
