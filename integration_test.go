package hypersort

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildTool compiles one cmd into a temp dir and returns the binary path.
// Integration tests exercise the CLIs exactly as a user would, catching
// flag plumbing and output regressions the unit tests cannot see.
func buildTool(t *testing.T, dir, name string) string {
	t.Helper()
	bin := filepath.Join(dir, name)
	cmd := exec.Command("go", "build", "-o", bin, "./cmd/"+name)
	cmd.Env = os.Environ()
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("building %s: %v\n%s", name, err, out)
	}
	return bin
}

func run(t *testing.T, bin string, args ...string) string {
	t.Helper()
	out, err := exec.Command(bin, args...).CombinedOutput()
	if err != nil {
		t.Fatalf("%s %v: %v\n%s", filepath.Base(bin), args, err, out)
	}
	return string(out)
}

func TestCLIIntegration(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the CLI tools")
	}
	dir := t.TempDir()

	t.Run("ftsort", func(t *testing.T) {
		bin := buildTool(t, dir, "ftsort")
		out := run(t, bin, "-n", "5", "-faults", "3,5,16,24", "-m", "470", "-estimate")
		for _, want := range []string{"mincut=3", "chosen=[0 1 3]", "dangling: [18 25 26 27]", "sorted 470 keys", "closed-form"} {
			if !strings.Contains(out, want) {
				t.Errorf("ftsort output missing %q:\n%s", want, out)
			}
		}
		// The Figure 6-style walkthrough.
		out = run(t, bin, "-n", "3", "-faults", "1", "-m", "12", "-steps", "-q")
		if !strings.Contains(out, "after-step-3") {
			t.Errorf("-steps output missing walkthrough:\n%s", out)
		}
		// Half-exchange protocol and total fault model accepted.
		out = run(t, bin, "-n", "4", "-faults", "2", "-m", "64", "-proto", "half", "-model", "total", "-q")
		if !strings.Contains(out, "sorted 64 keys") {
			t.Errorf("protocol/model run failed:\n%s", out)
		}
	})

	t.Run("partition", func(t *testing.T) {
		bin := buildTool(t, dir, "partition")
		out := run(t, bin, "-n", "5", "-faults", "3,5,16,24")
		for _, want := range []string{"mincut=3", "(1, 2, 3)  cost=4", "* (0, 1, 3)", "dead processor 18 (dangling)", "baseline"} {
			if !strings.Contains(out, want) {
				t.Errorf("partition output missing %q:\n%s", want, out)
			}
		}
	})

	t.Run("diagnose", func(t *testing.T) {
		bin := buildTool(t, dir, "diagnose")
		out := run(t, bin, "-n", "5", "-faults", "3,17")
		if !strings.Contains(out, "diagnosis exact") {
			t.Errorf("diagnose output:\n%s", out)
		}
	})

	t.Run("table1-json", func(t *testing.T) {
		bin := buildTool(t, dir, "table1")
		out := run(t, bin, "-trials", "50", "-max-n", "4", "-json")
		var rows []map[string]any
		if err := json.Unmarshal([]byte(out), &rows); err != nil {
			t.Fatalf("invalid JSON: %v\n%s", err, out)
		}
		if len(rows) != 3 { // n=3 r=2; n=4 r=2,3
			t.Errorf("got %d JSON rows", len(rows))
		}
	})

	t.Run("table2", func(t *testing.T) {
		bin := buildTool(t, dir, "table2")
		out := run(t, bin, "-trials", "50", "-max-n", "4")
		if !strings.Contains(out, "baseline worst") {
			t.Errorf("table2 output:\n%s", out)
		}
	})

	t.Run("fig7-svg-check", func(t *testing.T) {
		bin := buildTool(t, dir, "fig7")
		svgPath := filepath.Join(dir, "panel.svg")
		out := run(t, bin, "-n", "4", "-ms", "8000,64000", "-trials", "2", "-check", "-svg", svgPath)
		if !strings.Contains(out, "shape check: all of the paper's orderings hold") {
			t.Errorf("fig7 shape check failed:\n%s", out)
		}
		svg, err := os.ReadFile(svgPath)
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(string(svg), "<svg") {
			t.Error("svg file malformed")
		}
	})

	t.Run("ablations", func(t *testing.T) {
		bin := buildTool(t, dir, "ablations")
		out := run(t, bin, "-which", "e8")
		if !strings.Contains(out, "E8") || !strings.Contains(out, "ratio") {
			t.Errorf("ablations output:\n%s", out)
		}
	})

	t.Run("reproduce-quick", func(t *testing.T) {
		bin := buildTool(t, dir, "reproduce")
		outDir := filepath.Join(dir, "results")
		out := run(t, bin, "-quick", "-out", outDir)
		if !strings.Contains(out, "shape check PASSED") {
			t.Errorf("reproduce output:\n%s", out)
		}
		for _, f := range []string{"table1.txt", "table2.json", "fig7a.svg", "e15_availability.txt", "SUMMARY.md"} {
			if _, err := os.Stat(filepath.Join(outDir, f)); err != nil {
				t.Errorf("missing artifact %s: %v", f, err)
			}
		}
	})
}

func TestCLIErrorPaths(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the CLI tools")
	}
	dir := t.TempDir()
	bin := buildTool(t, dir, "ftsort")
	// Bad fault address must exit non-zero with a message.
	cmd := exec.Command(bin, "-n", "4", "-faults", "banana")
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("bad fault list accepted:\n%s", out)
	}
	if !strings.Contains(string(out), "bad processor address") {
		t.Errorf("unhelpful error: %s", out)
	}
}
