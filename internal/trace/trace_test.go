package trace

import (
	"strings"
	"testing"

	"hypersort/internal/core"
	"hypersort/internal/cube"
	"hypersort/internal/machine"
	"hypersort/internal/partition"
	"hypersort/internal/sortutil"
	"hypersort/internal/workload"
	"hypersort/internal/xrand"
)

func TestRecorderCollectsAndOrders(t *testing.T) {
	rec := NewRecorder()
	m := machine.MustNew(machine.Config{Dim: 2, Trace: rec.Record})
	_, err := m.Run(m.Healthy(), func(p *machine.Proc) error {
		peer := cube.FlipBit(p.ID(), 0)
		p.Exchange(peer, 1, []sortutil.Key{1, 2, 3})
		p.Compute(5)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// 4 nodes x (1 send + 1 recv + 1 compute) = 12 events.
	if rec.Len() != 12 {
		t.Fatalf("got %d events", rec.Len())
	}
	events := rec.Events()
	for i := 1; i < len(events); i++ {
		if events[i].Time < events[i-1].Time {
			t.Fatal("events not time-ordered")
		}
	}
	rec.Reset()
	if rec.Len() != 0 {
		t.Error("Reset did not clear")
	}
}

func TestAnalyzeBalances(t *testing.T) {
	rec := NewRecorder()
	m := machine.MustNew(machine.Config{Dim: 3, Trace: rec.Record})
	_, err := m.Run(m.Healthy(), func(p *machine.Proc) error {
		for d := 0; d < 3; d++ {
			p.Exchange(cube.FlipBit(p.ID(), d), machine.Tag(d), make([]sortutil.Key, 4))
			p.Compute(4)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	rep := Analyze(rec.Events())
	if len(rep.Profiles) != 8 {
		t.Fatalf("got %d profiles", len(rep.Profiles))
	}
	var out, in int64
	for _, p := range rep.Profiles {
		if p.Sends != 3 || p.Recvs != 3 || p.Comparisons != 12 {
			t.Errorf("profile %+v", p)
		}
		out += p.KeysOut
		in += p.KeysIn
	}
	if out != in || out != 8*3*4 {
		t.Errorf("keys out %d, in %d", out, in)
	}
	// Fault-free neighbor exchanges are all 1-hop.
	if rep.HopHistogram[1] != 24 || len(rep.HopHistogram) != 1 {
		t.Errorf("hop histogram %v", rep.HopHistogram)
	}
	if rep.ExtraHopShare() != 0 {
		t.Errorf("extra-hop share %v", rep.ExtraHopShare())
	}
	if rep.Traffic[0][1] != 1 {
		t.Error("traffic matrix missing 0->1")
	}
	if !strings.Contains(rep.Summary(), "messages by hop count") {
		t.Error("summary incomplete")
	}
}

// TestFTSortTraceShowsReindexHops traces a fault-tolerant sort whose
// cross-subcube partners are reindexed apart: the hop histogram must show
// multi-hop traffic, and ExtraHopShare must be positive.
func TestFTSortTraceShowsReindexHops(t *testing.T) {
	faults := cube.NewNodeSet(3, 5, 16, 24) // paper Example 1: HD between dead-w pairs > 0
	plan, err := partition.BuildPlan(5, faults)
	if err != nil {
		t.Fatal(err)
	}
	rec := NewRecorder()
	m := machine.MustNew(machine.Config{Dim: 5, Faults: faults, Trace: rec.Record})
	keys := workload.MustGenerate(workload.Uniform, 480, xrand.New(1))
	if _, _, err := core.FTSort(m, plan, keys); err != nil {
		t.Fatal(err)
	}
	rep := Analyze(rec.Events())
	if rep.ExtraHopShare() <= 0 {
		t.Error("expected multi-hop reindexed traffic")
	}
	if rep.Makespan <= 0 || rep.Events == 0 {
		t.Error("empty report")
	}
	// The timeline renderer must show all three event kinds within the
	// first phase and cap its output.
	tl := Timeline(rec.Events(), 100)
	for _, want := range []string{"compute", "send", "recv", "more events"} {
		if !strings.Contains(tl, want) {
			t.Errorf("timeline missing %q:\n%s", want, tl)
		}
	}
}

func TestAnalyzeEmpty(t *testing.T) {
	rep := Analyze(nil)
	if rep.Events != 0 || rep.ExtraHopShare() != 0 {
		t.Error("empty analysis wrong")
	}
	if Timeline(nil, 5) != "" {
		t.Error("empty timeline should be empty")
	}
}
