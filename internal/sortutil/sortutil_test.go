package sortutil

import (
	"sort"
	"testing"
	"testing/quick"

	"hypersort/internal/xrand"
)

func randomKeys(r *xrand.RNG, n int) []Key {
	xs := make([]Key, n)
	for i := range xs {
		xs[i] = Key(r.IntN(1000) - 500)
	}
	return xs
}

func TestDirectionBasics(t *testing.T) {
	if Ascending.String() != "ascending" || Descending.String() != "descending" {
		t.Error("String wrong")
	}
	if Ascending.Reverse() != Descending || Descending.Reverse() != Ascending {
		t.Error("Reverse wrong")
	}
	if ForParity(0) != Ascending || ForParity(1) != Descending || ForParity(6) != Ascending {
		t.Error("ForParity wrong")
	}
	if !Ascending.InOrder(1, 2) || Ascending.InOrder(2, 1) || !Ascending.InOrder(2, 2) {
		t.Error("InOrder ascending wrong")
	}
	if !Descending.InOrder(2, 1) || Descending.InOrder(1, 2) {
		t.Error("InOrder descending wrong")
	}
}

func TestHeapSortMatchesStdlib(t *testing.T) {
	r := xrand.New(1)
	for trial := 0; trial < 300; trial++ {
		n := r.IntN(128)
		xs := randomKeys(r, n)
		want := Clone(xs)
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		got := Clone(xs)
		HeapSort(got, Ascending)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d: HeapSort asc = %v, want %v (input %v)", trial, got, want, xs)
			}
		}
		gotD := Clone(xs)
		HeapSort(gotD, Descending)
		for i := range want {
			if gotD[i] != want[len(want)-1-i] {
				t.Fatalf("trial %d: HeapSort desc = %v", trial, gotD)
			}
		}
	}
}

func TestHeapSortEdgeCases(t *testing.T) {
	HeapSort(nil, Ascending) // must not panic
	one := []Key{42}
	HeapSort(one, Descending)
	if one[0] != 42 {
		t.Error("singleton changed")
	}
	dups := []Key{3, 3, 3, 3}
	HeapSort(dups, Ascending)
	if !IsSorted(dups, Ascending) {
		t.Error("duplicates broke heapsort")
	}
}

func TestHeapSortQuick(t *testing.T) {
	f := func(raw []int16) bool {
		xs := make([]Key, len(raw))
		for i, v := range raw {
			xs[i] = Key(v)
		}
		orig := Clone(xs)
		HeapSort(xs, Ascending)
		return IsSorted(xs, Ascending) && SameMultiset(xs, orig)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIsSorted(t *testing.T) {
	if !IsSorted([]Key{1, 2, 2, 3}, Ascending) || IsSorted([]Key{2, 1}, Ascending) {
		t.Error("ascending check wrong")
	}
	if !IsSorted([]Key{3, 2, 2, 1}, Descending) || IsSorted([]Key{1, 2}, Descending) {
		t.Error("descending check wrong")
	}
	if !IsSorted(nil, Ascending) || !IsSorted([]Key{5}, Descending) {
		t.Error("trivial sequences must count as sorted")
	}
}

func TestIsBitonic(t *testing.T) {
	cases := []struct {
		xs   []Key
		want bool
	}{
		{nil, true},
		{[]Key{1}, true},
		{[]Key{2, 1}, true},
		{[]Key{1, 3, 7, 4, 2}, true},  // up then down
		{[]Key{7, 3, 1, 4, 6}, true},  // down then up (cyclic rotation)
		{[]Key{1, 2, 3, 4}, true},     // monotone is bitonic
		{[]Key{1, 3, 2, 4}, false},    // two local maxima
		{[]Key{5, 5, 5}, true},        // constant
		{[]Key{1, 9, 1, 9}, false},    // zigzag
		{[]Key{2, 4, 4, 3, 1}, true},  // plateau at peak
		{[]Key{3, 1, 2, 1, 3}, false}, // W shape wraps to > 2 changes
	}
	for _, c := range cases {
		if got := IsBitonic(c.xs); got != c.want {
			t.Errorf("IsBitonic(%v) = %v, want %v", c.xs, got, c.want)
		}
	}
}

func TestConcatenationOfOppositeSortsIsBitonic(t *testing.T) {
	r := xrand.New(2)
	for trial := 0; trial < 100; trial++ {
		a := randomKeys(r, r.IntN(16))
		b := randomKeys(r, r.IntN(16))
		HeapSort(a, Ascending)
		HeapSort(b, Descending)
		if !IsBitonic(append(Clone(a), b...)) {
			t.Fatalf("asc+desc concat not bitonic: %v | %v", a, b)
		}
	}
}

func TestMerge(t *testing.T) {
	a := []Key{1, 4, 6}
	b := []Key{2, 3, 7}
	got := Merge(a, b, Ascending)
	want := []Key{1, 2, 3, 4, 6, 7}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Merge = %v", got)
		}
	}
	gd := Merge([]Key{6, 4, 1}, []Key{7, 3, 2}, Descending)
	if !IsSorted(gd, Descending) || len(gd) != 6 {
		t.Fatalf("descending Merge = %v", gd)
	}
	if got := Merge(nil, b, Ascending); len(got) != 3 {
		t.Error("merge with empty side wrong")
	}
}

func TestMergeIntoMatchesMerge(t *testing.T) {
	r := xrand.New(3)
	for trial := 0; trial < 100; trial++ {
		a := randomKeys(r, r.IntN(32))
		b := randomKeys(r, r.IntN(32))
		HeapSort(a, Ascending)
		HeapSort(b, Ascending)
		want := Merge(a, b, Ascending)
		dst := make([]Key, 0, len(a)+len(b))
		got := MergeInto(dst, a, b, Ascending)
		if len(got) != len(want) {
			t.Fatal("length mismatch")
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("MergeInto = %v, want %v", got, want)
			}
		}
	}
}

func TestCompareSplit(t *testing.T) {
	mine := []Key{1, 5, 9, 12}
	theirs := []Key{2, 3, 10, 11}
	low := CompareSplit(mine, theirs, true)
	wantLow := []Key{1, 2, 3, 5}
	for i := range wantLow {
		if low[i] != wantLow[i] {
			t.Fatalf("keepLow = %v", low)
		}
	}
	high := CompareSplit(mine, theirs, false)
	wantHigh := []Key{9, 10, 11, 12}
	for i := range wantHigh {
		if high[i] != wantHigh[i] {
			t.Fatalf("keepHigh = %v", high)
		}
	}
}

func TestCompareSplitPairInvariant(t *testing.T) {
	// keepLow of (a,b) plus keepHigh of (b,a) must partition the union, with
	// every low element <= every high element.
	r := xrand.New(4)
	for trial := 0; trial < 200; trial++ {
		k := 1 + r.IntN(24)
		a, b := randomKeys(r, k), randomKeys(r, k)
		HeapSort(a, Ascending)
		HeapSort(b, Ascending)
		low := CompareSplit(a, b, true)
		high := CompareSplit(b, a, false)
		union := append(Clone(a), b...)
		if !SameMultiset(append(Clone(low), high...), union) {
			t.Fatalf("compare-split lost elements: low %v high %v from %v %v", low, high, a, b)
		}
		if !IsSorted(low, Ascending) || !IsSorted(high, Ascending) {
			t.Fatal("compare-split results not sorted")
		}
		if len(low) > 0 && len(high) > 0 && low[len(low)-1] > high[0] {
			t.Fatalf("low max %d exceeds high min %d", low[len(low)-1], high[0])
		}
	}
}

func TestBitonicMergeSortsBitonicInput(t *testing.T) {
	r := xrand.New(5)
	for trial := 0; trial < 200; trial++ {
		k := 1 << (1 + r.IntN(5))
		a := randomKeys(r, k/2)
		b := randomKeys(r, k/2)
		HeapSort(a, Ascending)
		HeapSort(b, Descending)
		xs := append(a, b...)
		orig := Clone(xs)
		BitonicMerge(xs, Ascending)
		if !IsSorted(xs, Ascending) || !SameMultiset(xs, orig) {
			t.Fatalf("BitonicMerge failed on %v", orig)
		}
	}
}

func TestBitonicSort(t *testing.T) {
	r := xrand.New(6)
	for trial := 0; trial < 200; trial++ {
		n := 1 << r.IntN(8)
		xs := randomKeys(r, n)
		orig := Clone(xs)
		d := Ascending
		if trial%2 == 1 {
			d = Descending
		}
		BitonicSort(xs, d)
		if !IsSorted(xs, d) || !SameMultiset(xs, orig) {
			t.Fatalf("BitonicSort(%v) failed on %v -> %v", d, orig, xs)
		}
	}
}

func TestBitonicSortPanicsOnRaggedLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("BitonicSort accepted length 3")
		}
	}()
	BitonicSort(make([]Key, 3), Ascending)
}

func TestPadToPowerOfTwo(t *testing.T) {
	xs, pad := PadToPowerOfTwo([]Key{1, 2, 3})
	if len(xs) != 4 || pad != 1 || xs[3] != Inf {
		t.Errorf("pad = %v (%d)", xs, pad)
	}
	xs, pad = PadToPowerOfTwo([]Key{1, 2, 3, 4})
	if len(xs) != 4 || pad != 0 {
		t.Error("power-of-two input should not pad")
	}
	xs, pad = PadToPowerOfTwo(nil)
	if len(xs) != 0 || pad != 0 {
		t.Error("empty input should stay empty")
	}
}

func TestStripAndCount(t *testing.T) {
	xs := []Key{1, 2, Inf, Inf}
	if got := StripInf(xs); len(got) != 2 {
		t.Errorf("StripInf = %v", got)
	}
	if CountReal(xs) != 2 {
		t.Error("CountReal wrong")
	}
	if got := StripInf([]Key{Inf, Inf}); len(got) != 0 {
		t.Errorf("all-dummy StripInf = %v", got)
	}
}

func TestReverse(t *testing.T) {
	xs := []Key{1, 2, 3, 4, 5}
	Reverse(xs)
	for i, want := range []Key{5, 4, 3, 2, 1} {
		if xs[i] != want {
			t.Fatalf("Reverse = %v", xs)
		}
	}
	empty := []Key{}
	Reverse(empty) // must not panic
}

func TestSameMultiset(t *testing.T) {
	if !SameMultiset([]Key{1, 2, 2}, []Key{2, 1, 2}) {
		t.Error("equal multisets reported different")
	}
	if SameMultiset([]Key{1, 2}, []Key{1, 2, 2}) {
		t.Error("length mismatch accepted")
	}
	if SameMultiset([]Key{1, 1, 2}, []Key{1, 2, 2}) {
		t.Error("multiplicity mismatch accepted")
	}
}
