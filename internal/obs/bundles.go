package obs

import (
	"fmt"
	"sync"
)

// This file defines the pre-wired metric bundles the rest of the
// repository consumes: plain structs of registered instruments, so call
// sites hold direct pointers (no name lookups anywhere near a hot path)
// and a nil bundle pointer disables a whole subsystem's instrumentation
// with one branch.

// MachineMetrics is the simulated machine's bundle. The machine mutates
// nothing per message — per-node counters it already keeps are flushed
// into these counters once per Run, so the per-event hot path (Send,
// Recv, Compute) is untouched. The one exception is QueueDepth, sampled
// on the blocked-receive path only (a receive that found its message
// queued never samples).
type MachineMetrics struct {
	// Runs counts completed machine runs (kernel executions).
	Runs *Counter
	// Messages, KeysSent, and KeyHops aggregate the communication
	// counters of machine.Result over all runs.
	Messages *Counter
	KeysSent *Counter
	KeyHops  *Counter
	// Comparisons aggregates key comparisons over all runs.
	Comparisons *Counter
	// RecvWaits counts receives that blocked waiting for their message.
	RecvWaits *Counter
	// BarrierVTime accumulates the virtual time barriers absorbed: the
	// gap between each processor's clock at arrival and the group maximum
	// it synchronized to. Large values mean load imbalance.
	BarrierVTime *Counter
	// Makespan is the distribution of per-run simulated completion times.
	Makespan *Histogram
	// QueueDepth is the distribution of mailbox depths observed by
	// blocked receivers (sampled 1-in-16 per node to bound the cost of
	// walking the mailbox). Sustained large depths indicate link
	// congestion — a peer is producing faster than its partner consumes.
	QueueDepth *Histogram

	// Link-congestion instruments, flushed once per congestion-priced
	// run (multipath routing or hot links armed); legacy runs never
	// touch them.

	// LinkWait is the per-run distribution of total virtual time
	// messages queued behind busy links in the occupancy replay.
	LinkWait *Histogram
	// MaxLinkOccupancy gauges the traversal count of the hottest single
	// link in the most recent congestion-priced run.
	MaxLinkOccupancy *Gauge
	// StripedTransfers counts transfers split across multiple disjoint
	// paths.
	StripedTransfers *Counter

	// linkWaitDim holds the per-dimension link-wait histogram family,
	// one series per hypercube dimension, grown on demand (the bundle
	// does not know the machine dimension at registration time).
	reg         *Registry
	dimMu       sync.Mutex
	linkWaitDim []*Histogram
}

// FlushCongestion records one congestion-priced run's replay output:
// the total link wait (overall histogram plus the per-dimension family),
// the hottest link's traversal count, and the striped-transfer count.
func (mm *MachineMetrics) FlushCongestion(linkWait int64, perDim []int64, maxOcc, striped int64) {
	mm.LinkWait.Observe(linkWait)
	mm.MaxLinkOccupancy.Set(maxOcc)
	mm.StripedTransfers.Add(striped)
	mm.dimMu.Lock()
	for len(mm.linkWaitDim) < len(perDim) {
		d := len(mm.linkWaitDim)
		mm.linkWaitDim = append(mm.linkWaitDim, mm.reg.LabeledHistogram(
			"hypersort_machine_link_wait_dim_vtime",
			"Per-run virtual time messages queued behind busy links, split by link dimension; cost-model units.",
			"dim", fmt.Sprint(d)))
	}
	dims := mm.linkWaitDim[:len(perDim)]
	mm.dimMu.Unlock()
	for d, w := range perDim {
		dims[d].Observe(w)
	}
}

// NewMachineMetrics registers the machine bundle in r. Idempotent: the
// instruments are shared across repeated calls on one registry.
func NewMachineMetrics(r *Registry) *MachineMetrics {
	return &MachineMetrics{
		Runs: r.Counter("hypersort_machine_runs_total",
			"Completed simulated machine runs (one SPMD kernel execution each)."),
		Messages: r.Counter("hypersort_machine_messages_total",
			"Point-to-point messages sent across all runs."),
		KeysSent: r.Counter("hypersort_machine_keys_sent_total",
			"Keys carried by all messages across all runs."),
		KeyHops: r.Counter("hypersort_machine_key_hops_total",
			"Key*link traffic across all runs (each key counted once per hop travelled)."),
		Comparisons: r.Counter("hypersort_machine_comparisons_total",
			"Key comparisons performed across all runs."),
		RecvWaits: r.Counter("hypersort_machine_recv_waits_total",
			"Receives that blocked because no matching message was queued."),
		BarrierVTime: r.Counter("hypersort_machine_barrier_vtime_total",
			"Virtual time absorbed by barriers (sum over processors of group-max clock minus own clock), in cost-model units."),
		Makespan: r.Histogram("hypersort_machine_makespan",
			"Per-run simulated completion time, in cost-model units."),
		QueueDepth: r.Histogram("hypersort_machine_queue_depth",
			"Mailbox depth observed by blocked receivers (sampled 1-in-16 per node); messages."),
		LinkWait: r.Histogram("hypersort_machine_link_wait_vtime",
			"Per-run virtual time messages queued behind busy links in the congestion replay; cost-model units."),
		MaxLinkOccupancy: r.Gauge("hypersort_machine_link_max_occupancy",
			"Traversal count of the hottest single link in the most recent congestion-priced run."),
		StripedTransfers: r.Counter("hypersort_machine_striped_transfers_total",
			"Transfers split across multiple vertex-disjoint paths by multipath routing."),
		reg: r,
	}
}

// ClusterMetrics is the shard router's bundle: cluster-wide routing
// counters plus one labelled series per shard. The per-shard families
// (ShardRequests, ShardInflight) are indexed by shard id, so the router
// holds direct pointers and pays one atomic op per update, exactly like
// every other bundle.
type ClusterMetrics struct {
	// Requests counts requests that entered the router (shed ones
	// included); Spills counts requests steered off their home shard to a
	// replica because the home crossed the spill high-water mark; Sheds
	// counts requests refused before enqueueing because every eligible
	// shard (home plus replicas) was saturated.
	Requests *Counter
	Spills   *Counter
	Sheds    *Counter
	// Decision is the distribution of nanoseconds the router spent
	// choosing a shard (hash, ring walk, load reads) — the cluster layer's
	// own overhead, separable from engine queueing.
	Decision *Histogram
	// Reroutes counts requests re-dispatched to a ring successor after
	// their chosen shard failed mid-call (multi-process mode: shard
	// process death or transport error; always zero in-process).
	Reroutes *Counter
	// ShardRequests counts requests dispatched to each shard;
	// ShardInflight gauges each shard's requests currently in flight (the
	// load signal the spill and shed thresholds compare against).
	ShardRequests []*Counter
	ShardInflight []*Gauge
}

// NewClusterMetrics registers the cluster bundle for a router of `shards`
// shards in r. Idempotent per (name, shard) series: two clusters in one
// process accumulate into the same families.
func NewClusterMetrics(r *Registry, shards int) *ClusterMetrics {
	cm := &ClusterMetrics{
		Requests: r.Counter("hypersort_cluster_requests_total",
			"Requests that entered the cluster router, shed ones included."),
		Spills: r.Counter("hypersort_cluster_spills_total",
			"Requests steered to a replica shard because the home shard crossed the spill high-water mark."),
		Sheds: r.Counter("hypersort_cluster_sheds_total",
			"Requests refused before enqueueing because every eligible shard was saturated."),
		Decision: r.Histogram("hypersort_cluster_router_decision_ns",
			"Nanoseconds the router spent choosing a shard (hash, ring walk, load reads)."),
		Reroutes: r.Counter("hypersort_cluster_reroutes_total",
			"Requests re-dispatched to a ring successor after their chosen shard failed mid-call."),
	}
	for s := 0; s < shards; s++ {
		id := fmt.Sprint(s)
		cm.ShardRequests = append(cm.ShardRequests, r.LabeledCounter(
			"hypersort_cluster_shard_requests_total",
			"Requests dispatched to this shard.", "shard", id))
		cm.ShardInflight = append(cm.ShardInflight, r.LabeledGauge(
			"hypersort_cluster_shard_inflight",
			"Requests currently in flight on this shard (the router's spill/shed load signal).", "shard", id))
	}
	return cm
}

// TransportMetrics is the multi-process wire layer's bundle, held by
// the proxy side (the shard clients): per-call round-trip time,
// pipeline depth, and shard health transitions.
type TransportMetrics struct {
	// RTT is the per-call round-trip distribution in nanoseconds,
	// measured from frame encode to response decode — wire overhead
	// plus shard-side queueing and execution.
	RTT *Histogram
	// PipelineDepth is the distribution of calls already in flight to
	// a shard when another was sent; sustained depth near the
	// connection-pool capacity means the pipeline, not the shard, is
	// the bottleneck.
	PipelineDepth *Histogram
	// ShardUnhealthy counts healthy→unhealthy transitions across all
	// shard clients (one per detected shard death, not per failed
	// call).
	ShardUnhealthy *Counter
}

// NewTransportMetrics registers the transport bundle in r. Idempotent.
func NewTransportMetrics(r *Registry) *TransportMetrics {
	return &TransportMetrics{
		RTT: r.Histogram("hypersort_transport_rtt_ns",
			"Per-call shard round-trip time in nanoseconds (encode to decode, shard queueing included)."),
		PipelineDepth: r.Histogram("hypersort_transport_pipeline_depth",
			"Calls already in flight to a shard when another was sent."),
		ShardUnhealthy: r.Counter("hypersort_transport_shard_unhealthy_total",
			"Healthy-to-unhealthy shard transitions detected by the transport clients."),
	}
}

// EngineMetrics is the request engine's bundle, recorded once per request
// — always on, because a request costs milliseconds and these cost
// nanoseconds.
type EngineMetrics struct {
	// Requests counts completed requests; Failures the subset that
	// returned an error.
	Requests *Counter
	Failures *Counter
	// PlanHits / PlanMisses count plan-cache lookups (a miss runs the
	// cutting-dimension search once; cached failures count as hits).
	PlanHits   *Counter
	PlanMisses *Counter
	// MachinesBuilt / MachinesCloned count full constructions versus
	// pool-clone fast paths.
	MachinesBuilt  *Counter
	MachinesCloned *Counter
	// Latency is the wall-clock request latency distribution in
	// nanoseconds, measured inside Engine.Do (queueing for a pooled
	// machine included, HTTP overhead excluded).
	Latency *Histogram
	// PoolInUse gauges machines currently leased to in-flight requests.
	PoolInUse *Gauge

	// Continuous-batching dispatcher instruments.

	// FusedBatches counts fused dispatches (one machine lease each);
	// FusedRequests counts the requests they carried. The ratio is the
	// mean coalescing factor — FusedRequests > FusedBatches means the
	// dispatcher actually amortized lease/handoff cost.
	FusedBatches  *Counter
	FusedRequests *Counter
	// AdmissionRejected counts requests refused because their lane's
	// bounded admission queue was full (the caller saw
	// ErrAdmissionRejected); Cancelled counts requests whose context was
	// cancelled while they waited in a queue.
	AdmissionRejected *Counter
	Cancelled         *Counter
	// QueueDepth gauges requests currently waiting in dispatch lanes
	// (admitted but not yet claimed by a fused batch).
	QueueDepth *Gauge
	// QueueWait is the distribution of nanoseconds a request spent
	// waiting for execution capacity: lane-queue wait for batched
	// requests, machine-pool acquire wait for direct-path requests.
	QueueWait *Histogram
	// BatchSize is the distribution of requests per fused dispatch.
	BatchSize *Histogram

	// Live-fault recovery instruments (the replanning path that survives
	// mid-run injected casualties).

	// Replans counts successful hot replans: a run died to an injected
	// fault, diagnosis converged, a new plan was found, and the request
	// completed on the degraded configuration.
	Replans *Counter
	// AbortedSubRuns counts fused sub-runs cut short when a session
	// abort cascade fired mid-batch (the culprit plus every sub-run
	// never attempted).
	AbortedSubRuns *Counter
	// KeysRedistributed counts keys re-spread over the surviving
	// processors by successful replans.
	KeysRedistributed *Counter
	// Unrecoverable counts casualties the engine could not replan
	// around (no single-fault partition, or no processors left); the
	// caller saw ErrUnrecoverable.
	Unrecoverable *Counter
	// RecoveryLatency is the wall-clock nanoseconds from a fatal injected
	// casualty to the recovered request completing (diagnosis round,
	// replan, and degraded re-run included).
	RecoveryLatency *Histogram

	// Direct-mode instruments (the host-speed execution substrate; the
	// simulator stays the oracle).

	// DirectRequests counts requests served by the direct substrate (no
	// machine lease, predicted Result); DirectBatches counts dispatcher
	// batches executed directly.
	DirectRequests *Counter
	DirectBatches  *Counter
	// OracleRuns counts sampled direct results re-executed on the
	// simulator for cross-checking; DirectParityBreaks counts oracle runs
	// whose sorted output differed from the direct output — any nonzero
	// value is a bug in one substrate.
	OracleRuns         *Counter
	DirectParityBreaks *Counter
	// DirectCostError is the distribution of |predicted − simulated|
	// makespan error over oracle runs, in permille of the simulated
	// makespan.
	DirectCostError *Histogram
}

// NewEngineMetrics registers the engine bundle in r. Idempotent.
func NewEngineMetrics(r *Registry) *EngineMetrics {
	return &EngineMetrics{
		Requests: r.Counter("hypersort_engine_requests_total",
			"Completed engine requests, including failed ones."),
		Failures: r.Counter("hypersort_engine_failures_total",
			"Engine requests that returned an error."),
		PlanHits: r.Counter("hypersort_engine_plan_hits_total",
			"Plan-cache lookups that found an entry (cached failures included)."),
		PlanMisses: r.Counter("hypersort_engine_plan_misses_total",
			"Plan-cache lookups that ran the partition search."),
		MachinesBuilt: r.Counter("hypersort_engine_machines_built_total",
			"Full machine constructions (one template per pool)."),
		MachinesCloned: r.Counter("hypersort_engine_machines_cloned_total",
			"Clone fast-path machine constructions (pool growth)."),
		Latency: r.Histogram("hypersort_engine_request_latency_ns",
			"Wall-clock request latency in nanoseconds, including machine-pool queueing."),
		PoolInUse: r.Gauge("hypersort_engine_pool_in_use",
			"Simulated machines currently leased to in-flight requests."),
		FusedBatches: r.Counter("hypersort_engine_fused_batches_total",
			"Fused dispatches executed by the continuous-batching dispatcher (one machine lease each)."),
		FusedRequests: r.Counter("hypersort_engine_fused_requests_total",
			"Requests executed inside fused dispatches (ratio to fused batches = mean coalescing factor)."),
		AdmissionRejected: r.Counter("hypersort_engine_admission_rejected_total",
			"Requests refused because a dispatch lane's bounded admission queue was full."),
		Cancelled: r.Counter("hypersort_engine_cancelled_total",
			"Requests whose context was cancelled while waiting in a queue."),
		QueueDepth: r.Gauge("hypersort_engine_queue_depth",
			"Requests currently waiting in dispatch lanes (admitted, not yet claimed by a batch)."),
		QueueWait: r.Histogram("hypersort_engine_queue_wait_ns",
			"Nanoseconds a request waited for execution capacity (lane queue or machine-pool acquire)."),
		BatchSize: r.Histogram("hypersort_engine_batch_size",
			"Requests per fused dispatch."),
		Replans: r.Counter("hypersort_engine_replans_total",
			"Successful hot replans after a mid-run injected casualty (diagnosis converged, new plan found, request completed)."),
		AbortedSubRuns: r.Counter("hypersort_engine_aborted_sub_runs_total",
			"Fused sub-runs cut short by a session abort cascade (culprit plus never-attempted remainder)."),
		KeysRedistributed: r.Counter("hypersort_engine_keys_redistributed_total",
			"Keys re-spread over surviving processors by successful replans."),
		Unrecoverable: r.Counter("hypersort_engine_unrecoverable_total",
			"Casualties the engine could not replan around (caller saw ErrUnrecoverable)."),
		RecoveryLatency: r.Histogram("hypersort_engine_recovery_latency_ns",
			"Wall-clock nanoseconds from fatal injected casualty to recovered request completion."),
		DirectRequests: r.Counter("hypersort_engine_direct_requests_total",
			"Requests served by the direct host-speed substrate (no machine lease, predicted Result)."),
		DirectBatches: r.Counter("hypersort_engine_direct_batches_total",
			"Dispatcher batches executed on the direct substrate."),
		OracleRuns: r.Counter("hypersort_engine_oracle_runs_total",
			"Sampled direct results re-executed on the simulator oracle for cross-checking."),
		DirectParityBreaks: r.Counter("hypersort_engine_direct_parity_breaks_total",
			"Oracle runs whose sorted output differed from the direct output (any nonzero value is a bug)."),
		DirectCostError: r.Histogram("hypersort_engine_direct_cost_error_permille",
			"Absolute predicted-vs-simulated makespan error over oracle runs, in permille of the simulated makespan."),
	}
}
