package direct

import (
	"fmt"
	"slices"
	"testing"

	"hypersort/internal/core"
	"hypersort/internal/cube"
	"hypersort/internal/machine"
	"hypersort/internal/partition"
	"hypersort/internal/sortutil"
	"hypersort/internal/workload"
	"hypersort/internal/xrand"
)

// parityConfig is one cached-plan shape the torture suite holds the two
// substrates bit-identical on.
type parityConfig struct {
	name   string
	dim    int
	faults []cube.NodeID
	links  [][2]cube.NodeID
	model  machine.FaultModel
}

// parityConfigs spans the plan shapes the engine caches: healthy cubes,
// single- and multi-fault partitions (including the paper's Example 1
// fault set on Q_6), the total fault model, and detour routing around
// dead links.
func parityConfigs() []parityConfig {
	return []parityConfig{
		{name: "q4-healthy", dim: 4},
		{name: "q3-f0", dim: 3, faults: []cube.NodeID{0}},
		{name: "q4-f079", dim: 4, faults: []cube.NodeID{0, 7, 9}},
		{name: "q5-f3-17-21-30", dim: 5, faults: []cube.NodeID{3, 17, 21, 30}},
		{name: "q6-paper", dim: 6, faults: []cube.NodeID{3, 5, 16, 24}},
		{name: "q4-f5-total", dim: 4, faults: []cube.NodeID{5}, model: machine.Total},
		{name: "q4-f5-links", dim: 4, faults: []cube.NodeID{5}, links: [][2]cube.NodeID{{0, 2}, {9, 11}}},
	}
}

// rig is one compiled configuration: the simulated machine and the
// direct schedule for the same cached plan.
type rig struct {
	plan   *partition.Plan
	layout *core.Layout
	m      *machine.Machine
	sch    *Schedule
	exec   *Exec
	// exactHops reports whether the simulator prices routes by Hamming
	// distance for this config (partial model, no link faults) — the
	// regime where the predicted KeyHops must match exactly.
	exactHops bool
}

func buildRig(t *testing.T, pc parityConfig) *rig {
	t.Helper()
	faults := cube.NewNodeSet(pc.faults...)
	plan, err := partition.BuildPlan(pc.dim, faults)
	if err != nil {
		t.Fatalf("BuildPlan(%d, %v): %v", pc.dim, pc.faults, err)
	}
	links := cube.EdgeSet{}
	for _, e := range pc.links {
		links.Add(e[0], e[1])
	}
	m, err := machine.New(machine.Config{Dim: pc.dim, Faults: faults, LinkFaults: links, Model: pc.model})
	if err != nil {
		t.Fatalf("machine.New: %v", err)
	}
	t.Cleanup(m.Close)
	layout := core.NewLayout(plan)
	sch := Compile(layout)
	return &rig{
		plan:      plan,
		layout:    layout,
		m:         m,
		sch:       sch,
		exec:      NewExec(sch),
		exactHops: pc.model == machine.Partial && len(pc.links) == 0,
	}
}

// check runs keys through both substrates and fails unless the outputs
// are bit-identical and the predicted work counters match the simulated
// ones per the documented exactness contract.
func (rg *rig) check(t *testing.T, keys []sortutil.Key) {
	t.Helper()
	simOut, simRes, err := core.FTSortLayout(rg.m, rg.layout, keys, core.Options{})
	if err != nil {
		t.Fatalf("simulated sort: %v", err)
	}
	dirOut, err := rg.exec.Sort(keys)
	if err != nil {
		t.Fatalf("direct sort: %v", err)
	}
	if !slices.Equal(simOut, dirOut) {
		t.Fatalf("parity break on %d keys: sim %v... direct %v...",
			len(keys), head(simOut), head(dirOut))
	}
	pred, err := rg.sch.Predict(len(keys), machine.CostModel{})
	if err != nil {
		t.Fatalf("Predict: %v", err)
	}
	if pred.Messages != simRes.Messages {
		t.Errorf("Messages: predicted %d, simulated %d", pred.Messages, simRes.Messages)
	}
	if pred.KeysSent != simRes.KeysSent {
		t.Errorf("KeysSent: predicted %d, simulated %d", pred.KeysSent, simRes.KeysSent)
	}
	if pred.Comparisons != simRes.Comparisons {
		t.Errorf("Comparisons: predicted %d, simulated %d", pred.Comparisons, simRes.Comparisons)
	}
	if rg.exactHops {
		if pred.KeyHops != simRes.KeyHops {
			t.Errorf("KeyHops: predicted %d, simulated %d", pred.KeyHops, simRes.KeyHops)
		}
	} else if pred.KeyHops > simRes.KeyHops {
		t.Errorf("KeyHops: predicted %d exceeds simulated %d (must be a lower bound)",
			pred.KeyHops, simRes.KeyHops)
	}
}

func head(ks []sortutil.Key) []sortutil.Key {
	if len(ks) > 8 {
		return ks[:8]
	}
	return ks
}

// TestParityExhaustivePermutations sweeps every permutation of a small
// distinct key set and of a duplicate-heavy multiset through healthy and
// degraded plans, go-lua torture style: at this size the input space is
// coverable outright, so any divergence in pair order, direction, or
// tie-breaking between the substrates is caught unconditionally.
func TestParityExhaustivePermutations(t *testing.T) {
	configs := []parityConfig{
		{name: "q2-healthy", dim: 2},
		{name: "q2-f3", dim: 2, faults: []cube.NodeID{3}},
		{name: "q3-f0", dim: 3, faults: []cube.NodeID{0}},
	}
	inputs := [][]sortutil.Key{
		{1, 2, 3, 4, 5, 6},    // distinct
		{0, 0, 1, 1, 2, 2},    // duplicate multiset: tie-breaking coverage
		{5, 4, 3, 2, 1, 0, 9}, // length not divisible by p: Inf padding
	}
	for _, pc := range configs {
		t.Run(pc.name, func(t *testing.T) {
			rg := buildRig(t, pc)
			for _, base := range inputs {
				permute(slices.Clone(base), func(perm []sortutil.Key) {
					rg.check(t, perm)
				})
			}
		})
	}
}

// permute invokes f on every permutation of keys (Heap's algorithm).
// f must not retain or modify its argument.
func permute(keys []sortutil.Key, f func([]sortutil.Key)) {
	var rec func(k int)
	rec = func(k int) {
		if k <= 1 {
			f(keys)
			return
		}
		for i := 0; i < k; i++ {
			rec(k - 1)
			if k%2 == 0 {
				keys[i], keys[k-1] = keys[k-1], keys[i]
			} else {
				keys[0], keys[k-1] = keys[k-1], keys[0]
			}
		}
	}
	rec(len(keys))
}

// allEqual builds m identical keys — the degenerate all-ties input.
func allEqual(m int) []sortutil.Key {
	out := make([]sortutil.Key, m)
	for i := range out {
		out[i] = 42
	}
	return out
}

// sawtooth builds m keys cycling 0..period-1 — the classic adversarial
// order for merge networks (maximal alternation between chunks).
func sawtooth(m, period int) []sortutil.Key {
	out := make([]sortutil.Key, m)
	for i := range out {
		out[i] = sortutil.Key(i % period)
	}
	return out
}

// TestParityAdversarial runs structured adversarial orders and random
// workloads at scale through every parity configuration, including
// degraded plans, the total fault model, and link-fault detour routing.
func TestParityAdversarial(t *testing.T) {
	r := xrand.New(7)
	sizes := []int{17, 256, 4096}
	for _, pc := range parityConfigs() {
		t.Run(pc.name, func(t *testing.T) {
			rg := buildRig(t, pc)
			for _, m := range sizes {
				inputs := map[string][]sortutil.Key{
					"sawtooth":  sawtooth(m, 7),
					"dup-heavy": workload.MustGenerate(workload.FewDistinct, m, r),
					"presorted": workload.MustGenerate(workload.Sorted, m, r),
					"reversed":  workload.MustGenerate(workload.ReverseOrder, m, r),
					"all-equal": allEqual(m),
					"uniform":   workload.MustGenerate(workload.Uniform, m, r),
				}
				for name, keys := range inputs {
					before := slices.Clone(keys)
					rg.check(t, keys)
					if !slices.Equal(keys, before) {
						t.Fatalf("%s/%d: input mutated", name, m)
					}
				}
			}
		})
	}
}

// TestParityLargeParallel crosses the executor's parallelism threshold
// so the striped multi-worker rounds (not just the inline path) are held
// to bit-identical parity.
func TestParityLargeParallel(t *testing.T) {
	if testing.Short() {
		t.Skip("large input")
	}
	r := xrand.New(11)
	for _, pc := range []parityConfig{
		{name: "q4-healthy", dim: 4},
		{name: "q4-f079", dim: 4, faults: []cube.NodeID{0, 7, 9}},
	} {
		t.Run(pc.name, func(t *testing.T) {
			rg := buildRig(t, pc)
			m := parallelThreshold + 1337 // forces the multi-worker path
			rg.check(t, workload.MustGenerate(workload.Uniform, m, r))
			rg.check(t, sawtooth(m, 13))
		})
	}
}

// TestExecReuse re-runs one executor across many inputs to pin the
// arena re-carve invariant: buffer permutations left by one run must not
// alias shares and scratch on the next.
func TestExecReuse(t *testing.T) {
	rg := buildRig(t, parityConfig{name: "q4-f079", dim: 4, faults: []cube.NodeID{0, 7, 9}})
	r := xrand.New(3)
	for i := 0; i < 50; i++ {
		m := 1 + r.IntN(600)
		rg.check(t, workload.MustGenerate(workload.Uniform, m, r))
	}
}

// TestScheduleShape sanity-checks the compiled schedule's structure
// against the closed-form round counts: s(s+1)/2 intra-subcube rounds
// per merge pass, m(m+1)/2 cross passes.
func TestScheduleShape(t *testing.T) {
	for _, pc := range parityConfigs() {
		t.Run(pc.name, func(t *testing.T) {
			rg := buildRig(t, pc)
			sp := rg.plan.Split
			s, m := sp.S(), sp.M()
			mergeRounds := s * (s + 1) / 2
			if rg.plan.HasDead && s == 1 {
				// Q_1 subcubes with a dead member have no live pairs at
				// all: every merge round is empty and dropped.
				mergeRounds = 0
			}
			cross := m * (m + 1) / 2
			want := mergeRounds + cross*(1+mergeRounds)
			if got := rg.sch.NumRounds(); got != want {
				t.Errorf("NumRounds = %d, want %d (s=%d m=%d)", got, want, s, m)
			}
			if rg.sch.P() != len(rg.layout.Working) {
				t.Errorf("P = %d, want %d", rg.sch.P(), len(rg.layout.Working))
			}
			if rg.sch.NumPairs() == 0 && m+s > 0 {
				t.Error("schedule has no pairs")
			}
		})
	}
}

// TestPredictErrors covers Predict's validation path.
func TestPredictErrors(t *testing.T) {
	rg := buildRig(t, parityConfig{name: "q3", dim: 3})
	if _, err := rg.sch.Predict(-1, machine.CostModel{}); err == nil {
		t.Error("negative key count accepted")
	}
}

func ExampleCompile() {
	plan, _ := partition.BuildPlan(3, cube.NewNodeSet(0))
	sch := Compile(core.NewLayout(plan))
	out, _ := NewExec(sch).Sort([]sortutil.Key{5, 3, 9, 1, 7, 2, 8, 4})
	fmt.Println(out)
	// Output: [1 2 3 4 5 7 8 9]
}
