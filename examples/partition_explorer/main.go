// Partition explorer: walks the paper's Example 1 and Example 2 end to
// end — the cutting-dimension search, the formula (1) costs, the
// selection of D_β, the dangling processors — and then runs the sort on
// exactly that configuration, printing where every key range ends up.
package main

import (
	"fmt"
	"log"

	"hypersort/internal/core"
	"hypersort/internal/cube"
	"hypersort/internal/machine"
	"hypersort/internal/partition"
	"hypersort/internal/sortutil"
	"hypersort/internal/workload"
	"hypersort/internal/xrand"
)

func main() {
	// Example 1: Q_5 with faults FP_1..FP_4 at 00011, 00101, 10000, 11000.
	faults := cube.NewNodeSet(3, 5, 16, 24)
	h := cube.New(5)
	fmt.Println("Example 1: Q_5, faults {3, 5, 16, 24} = {00011, 00101, 10000, 11000}")

	set, err := partition.FindCuttingSet(h, faults)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cutting-dimension tree search visited %d nodes; mincut m = %d\n",
		set.NodesVisited, set.Mincut)
	fmt.Println("Ψ with formula (1) extra-communication costs:")
	for _, d := range set.Sequences {
		cost, err := partition.ExtraCommCost(h, faults, d)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  D = %v  ->  Σ max(h_i) = %d\n", d, cost)
	}

	// Example 2: selection and dangling processors.
	plan, err := partition.BuildPlan(5, faults)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nExample 2: selected D_β = %v (cost %d)\n", plan.Chosen, plan.ExtraComm)
	fmt.Printf("dangling local address w = %s; dangling processors %v\n",
		cube.FormatAddr(partition.DanglingW(plan.Split, faults), plan.Split.S()), plan.Dangling)
	for v := 0; v < plan.NumSubcubes(); v++ {
		dead := plan.DeadOf(cube.NodeID(v))
		role := "dangling"
		if faults.Has(dead) {
			role = "faulty"
		}
		fmt.Printf("  subcube v=%s: dead processor %2d (%s)\n",
			cube.FormatAddr(cube.NodeID(v), plan.Mincut()), dead, role)
	}

	// Run the sort on this exact configuration (the paper distributes 47
	// elements in its Figure 6 walkthrough; we use a few more to make the
	// per-subcube ranges visible).
	mach := machine.MustNew(machine.Config{Dim: 5, Faults: faults})
	keys := workload.MustGenerate(workload.Uniform, 480, xrand.New(6))
	sorted, res, err := core.FTSort(mach, plan, keys)
	if err != nil {
		log.Fatal(err)
	}
	if !sortutil.IsSorted(sorted, sortutil.Ascending) {
		log.Fatal("not sorted")
	}
	fmt.Printf("\nsorted %d keys in %d simulated units; final layout:\n", len(sorted), res.Makespan)
	per := len(sorted) / plan.Working()
	layout := core.NewLayout(plan)
	for i, phys := range layout.Working {
		lo := i * per
		hi := lo + per - 1
		if hi >= len(sorted) {
			hi = len(sorted) - 1
		}
		if lo > hi {
			break
		}
		v := plan.Split.V(phys)
		fmt.Printf("  processor %2d (subcube %s): keys[%3d..%3d] = %d..%d\n",
			phys, cube.FormatAddr(v, plan.Mincut()), lo, hi, sorted[lo], sorted[hi])
	}
}
